package model

import (
	"encoding/json"
	"testing"
)

func mustAdd(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func seqSchema(t *testing.T) *Schema {
	t.Helper()
	s := NewSchema("s1", "demo", 1)
	mustAdd(t, s.AddNode(&Node{ID: "start", Type: NodeStart}))
	mustAdd(t, s.AddNode(&Node{ID: "a", Type: NodeActivity, Role: "clerk"}))
	mustAdd(t, s.AddNode(&Node{ID: "b", Type: NodeActivity, Role: "clerk"}))
	mustAdd(t, s.AddNode(&Node{ID: "end", Type: NodeEnd}))
	mustAdd(t, s.AddEdge(&Edge{From: "start", To: "a", Type: EdgeControl}))
	mustAdd(t, s.AddEdge(&Edge{From: "a", To: "b", Type: EdgeControl}))
	mustAdd(t, s.AddEdge(&Edge{From: "b", To: "end", Type: EdgeControl}))
	mustAdd(t, s.AddDataElement(&DataElement{ID: "d1", Type: TypeInt}))
	mustAdd(t, s.AddDataEdge(&DataEdge{Activity: "a", Element: "d1", Access: Write, Parameter: "out"}))
	mustAdd(t, s.AddDataEdge(&DataEdge{Activity: "b", Element: "d1", Access: Read, Parameter: "in", Mandatory: true}))
	return s
}

func TestSchemaAccessors(t *testing.T) {
	s := seqSchema(t)
	if s.SchemaID() != "s1" || s.TypeName() != "demo" || s.Version() != 1 {
		t.Fatalf("metadata mismatch: %q %q %d", s.SchemaID(), s.TypeName(), s.Version())
	}
	if s.StartID() != "start" || s.EndID() != "end" {
		t.Fatalf("start/end detection failed: %q %q", s.StartID(), s.EndID())
	}
	if got := len(s.NodeIDs()); got != 4 {
		t.Fatalf("want 4 nodes, got %d", got)
	}
	if got := len(s.Edges()); got != 3 {
		t.Fatalf("want 3 edges, got %d", got)
	}
	if !s.HasEdge(EdgeKey{From: "a", To: "b", Type: EdgeControl}) {
		t.Fatal("edge a->b missing")
	}
	if s.HasEdge(EdgeKey{From: "a", To: "b", Type: EdgeSync}) {
		t.Fatal("sync edge a~>b should not exist")
	}
	if got := ControlSuccs(s, "a"); len(got) != 1 || got[0] != "b" {
		t.Fatalf("ControlSuccs(a) = %v", got)
	}
	if got := ControlPreds(s, "b"); len(got) != 1 || got[0] != "a" {
		t.Fatalf("ControlPreds(b) = %v", got)
	}
	if got := len(s.DataEdgesOf("a")); got != 1 {
		t.Fatalf("DataEdgesOf(a) = %d edges", got)
	}
	if got := WritersOf(s, "d1"); len(got) != 1 || got[0] != "a" {
		t.Fatalf("WritersOf(d1) = %v", got)
	}
	if got := ReadersOf(s, "d1"); len(got) != 1 || got[0] != "b" {
		t.Fatalf("ReadersOf(d1) = %v", got)
	}
}

func TestSchemaMutationErrors(t *testing.T) {
	s := seqSchema(t)
	cases := []struct {
		name string
		err  error
	}{
		{"duplicate node", s.AddNode(&Node{ID: "a", Type: NodeActivity})},
		{"empty node id", s.AddNode(&Node{Type: NodeActivity})},
		{"second start", s.AddNode(&Node{ID: "s2", Type: NodeStart})},
		{"second end", s.AddNode(&Node{ID: "e2", Type: NodeEnd})},
		{"self edge", s.AddEdge(&Edge{From: "a", To: "a", Type: EdgeControl})},
		{"unknown source", s.AddEdge(&Edge{From: "zz", To: "a", Type: EdgeControl})},
		{"unknown target", s.AddEdge(&Edge{From: "a", To: "zz", Type: EdgeControl})},
		{"duplicate edge", s.AddEdge(&Edge{From: "a", To: "b", Type: EdgeControl})},
		{"remove node with edges", s.RemoveNode("a")},
		{"remove missing node", s.RemoveNode("zz")},
		{"remove missing edge", s.RemoveEdge(EdgeKey{From: "b", To: "a", Type: EdgeControl})},
		{"duplicate data element", s.AddDataElement(&DataElement{ID: "d1"})},
		{"empty data element", s.AddDataElement(&DataElement{})},
		{"data edge unknown activity", s.AddDataEdge(&DataEdge{Activity: "zz", Element: "d1", Parameter: "p"})},
		{"data edge unknown element", s.AddDataEdge(&DataEdge{Activity: "a", Element: "zz", Parameter: "p"})},
		{"data edge empty parameter", s.AddDataEdge(&DataEdge{Activity: "a", Element: "d1"})},
		{"duplicate data edge", s.AddDataEdge(&DataEdge{Activity: "a", Element: "d1", Access: Write, Parameter: "out"})},
		{"remove element with edges", s.RemoveDataElement("d1")},
		{"remove missing element", s.RemoveDataElement("zz")},
		{"remove missing data edge", s.RemoveDataEdge(DataEdgeKey{Activity: "a", Element: "d1", Access: Read, Parameter: "x"})},
	}
	for _, c := range cases {
		if c.err == nil {
			t.Errorf("%s: expected error, got nil", c.name)
		}
	}
}

func TestSchemaRemoveRoundTrip(t *testing.T) {
	s := seqSchema(t)
	// Remove b entirely: data edge, then edges, then node.
	mustAdd(t, s.RemoveDataEdge(DataEdgeKey{Activity: "b", Element: "d1", Access: Read, Parameter: "in"}))
	mustAdd(t, s.RemoveEdge(EdgeKey{From: "a", To: "b", Type: EdgeControl}))
	mustAdd(t, s.RemoveEdge(EdgeKey{From: "b", To: "end", Type: EdgeControl}))
	mustAdd(t, s.RemoveNode("b"))
	mustAdd(t, s.AddEdge(&Edge{From: "a", To: "end", Type: EdgeControl}))
	if _, ok := s.Node("b"); ok {
		t.Fatal("node b still present")
	}
	if len(s.Edges()) != 2 {
		t.Fatalf("want 2 edges after removal, got %d", len(s.Edges()))
	}
	if got := ControlSuccs(s, "a"); len(got) != 1 || got[0] != "end" {
		t.Fatalf("ControlSuccs(a) = %v", got)
	}
	// Removing start clears the cached ID.
	mustAdd(t, s.RemoveEdge(EdgeKey{From: "start", To: "a", Type: EdgeControl}))
	mustAdd(t, s.RemoveNode("start"))
	if s.StartID() != "" {
		t.Fatalf("start ID not cleared: %q", s.StartID())
	}
}

func TestSchemaCloneIsDeep(t *testing.T) {
	s := seqSchema(t)
	c := s.Clone()
	if !Equal(s, c) {
		t.Fatal("clone not equal to original")
	}
	// Mutate the clone; the original must not change.
	n, _ := c.Node("a")
	n.Name = "renamed"
	mustAdd(t, c.AddNode(&Node{ID: "x", Type: NodeActivity}))
	mustAdd(t, c.AddEdge(&Edge{From: "a", To: "x", Type: EdgeSync}))
	if _, ok := s.Node("x"); ok {
		t.Fatal("mutating clone leaked into original")
	}
	orig, _ := s.Node("a")
	if orig.Name == "renamed" {
		t.Fatal("node copy is shallow")
	}
	if Equal(s, c) {
		t.Fatal("Equal failed to detect difference")
	}
}

func TestSchemaJSONRoundTrip(t *testing.T) {
	s := seqSchema(t)
	blob, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Schema
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !Equal(s, &back) {
		t.Fatal("JSON round trip lost structure")
	}
	if back.SchemaID() != s.SchemaID() || back.Version() != s.Version() || back.TypeName() != s.TypeName() {
		t.Fatal("JSON round trip lost metadata")
	}
	if back.StartID() != "start" || back.EndID() != "end" {
		t.Fatal("JSON round trip lost start/end detection")
	}
	if err := json.Unmarshal([]byte(`{"nodes":[{"ID":"a"},{"ID":"a"}]}`), &back); err == nil {
		t.Fatal("expected duplicate-node error from unmarshal")
	}
	if err := json.Unmarshal([]byte(`not json`), &back); err == nil {
		t.Fatal("expected syntax error from unmarshal")
	}
}

func TestEqualDetectsDataDifferences(t *testing.T) {
	a := seqSchema(t)
	b := seqSchema(t)
	if !Equal(a, b) {
		t.Fatal("identical schemas not equal")
	}
	mustAdd(t, b.AddDataElement(&DataElement{ID: "d2", Type: TypeBool}))
	if Equal(a, b) {
		t.Fatal("extra data element not detected")
	}
	b2 := seqSchema(t)
	mustAdd(t, b2.RemoveDataEdge(DataEdgeKey{Activity: "b", Element: "d1", Access: Read, Parameter: "in"}))
	mustAdd(t, b2.AddDataEdge(&DataEdge{Activity: "b", Element: "d1", Access: Read, Parameter: "other"}))
	if Equal(a, b2) {
		t.Fatal("different data edge parameter not detected")
	}
}

func TestApproxBytesGrowsWithContent(t *testing.T) {
	small := seqSchema(t)
	large := seqSchema(t)
	for i := 0; i < 20; i++ {
		id := string(rune('k'+i)) + "_node"
		mustAdd(t, large.AddNode(&Node{ID: id, Type: NodeActivity, Name: "activity " + id}))
	}
	if large.ApproxBytes() <= small.ApproxBytes() {
		t.Fatalf("ApproxBytes did not grow: small=%d large=%d", small.ApproxBytes(), large.ApproxBytes())
	}
}

func TestStringMethods(t *testing.T) {
	n := &Node{ID: "a", Name: "Collect Data", Type: NodeActivity}
	if got := n.String(); got != `a[activity "Collect Data"]` {
		t.Errorf("Node.String() = %q", got)
	}
	if got := (&Edge{From: "a", To: "b", Type: EdgeSync}).String(); got != "a~>b" {
		t.Errorf("sync edge String() = %q", got)
	}
	if got := (&Edge{From: "a", To: "b", Type: EdgeLoop}).String(); got != "a=>b" {
		t.Errorf("loop edge String() = %q", got)
	}
	if got := (&DataEdge{Activity: "a", Element: "d", Access: Write, Parameter: "p"}).String(); got != "a --p--> d" {
		t.Errorf("write data edge String() = %q", got)
	}
	if NodeXORSplit.String() != "xor-split" || EdgeSync.String() != "sync" {
		t.Error("enum String() mismatch")
	}
	if NodeType(99).String() == "" || EdgeType(99).String() == "" || DataType(99).String() == "" {
		t.Error("out-of-range enum String() should not be empty")
	}
	if Read.String() != "read" || Write.String() != "write" {
		t.Error("DataAccess String() mismatch")
	}
}

func TestMatchingJoin(t *testing.T) {
	for split, join := range map[NodeType]NodeType{
		NodeANDSplit:  NodeANDJoin,
		NodeXORSplit:  NodeXORJoin,
		NodeLoopStart: NodeLoopEnd,
	} {
		got, ok := split.MatchingJoin()
		if !ok || got != join {
			t.Errorf("MatchingJoin(%s) = %s, %v", split, got, ok)
		}
	}
	if _, ok := NodeActivity.MatchingJoin(); ok {
		t.Error("activity should have no matching join")
	}
	if !NodeANDSplit.IsSplit() || !NodeLoopEnd.IsJoin() || !NodeXORJoin.IsGateway() || NodeActivity.IsGateway() {
		t.Error("type predicates mismatch")
	}
}

func TestDataTypeZeroValues(t *testing.T) {
	if TypeInt.ZeroValue() != int64(0) {
		t.Error("int zero")
	}
	if TypeBool.ZeroValue() != false {
		t.Error("bool zero")
	}
	if TypeFloat.ZeroValue() != float64(0) {
		t.Error("float zero")
	}
	if TypeString.ZeroValue() != "" {
		t.Error("string zero")
	}
}
