package adept2_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"adept2"
	"adept2/internal/sim"
	"adept2/internal/vfs"
)

// faultDriver feeds a deterministic random command stream through all
// three submission paths against a possibly-failing disk. Unlike
// cmdDriver it tolerates durability failures: once the pipeline wedges
// or the disk crashes it stops driving, and it records exactly which
// writes were ACKNOWLEDGED durable (Submit returned nil, SubmitBatch
// returned nil, a receipt's Wait returned nil) — the set no crash is
// allowed to lose.
type faultDriver struct {
	t     *testing.T
	sys   *adept2.System
	rng   *rand.Rand
	ctx   context.Context
	insts []string

	receipts  []*adept2.Receipt
	byReceipt map[*adept2.Receipt]string // receipt -> created instance ID

	ackedInsts []string // instance creations acknowledged durable
	ackedSeqs  [][2]int // (shard, seq) pairs acknowledged durable
	evolves    int      // Evolve commands proposed (names the inserted node)
	dead       bool     // durability failed; stop driving
}

func newFaultDriver(t *testing.T, sys *adept2.System, seed int64) *faultDriver {
	t.Helper()
	d := &faultDriver{
		t: t, sys: sys, rng: rand.New(rand.NewSource(seed)),
		ctx: context.Background(), byReceipt: make(map[*adept2.Receipt]string),
	}
	if err := sys.Deploy(sim.OnlineOrder()); err != nil {
		d.noteErr(err)
	}
	return d
}

// noteErr classifies a submission error: rejections are part of the
// random walk, durability failures end it, anything untyped fails the
// test.
func (d *faultDriver) noteErr(err error) {
	var e *adept2.Error
	if !errors.As(err, &e) {
		d.t.Fatalf("untyped command error: %v", err)
	}
	switch e.Code {
	case adept2.CodeWedged, adept2.CodeInternal:
		d.dead = true
	}
}

// propose builds the next random command; every command is well-formed
// (rejections still happen via wrong node states, out-of-order evolution
// chains, or undoing an unbiased instance, which is fine). The stream
// mixes data commands with the control commands Evolve and Undo, so the
// crash-point enumeration also kills the store mid-evolution and
// mid-undo.
func (d *faultDriver) propose() adept2.Command {
	pick := func() string {
		if len(d.insts) == 0 {
			return ""
		}
		return d.insts[d.rng.Intn(len(d.insts))]
	}
	switch r := d.rng.Intn(14); {
	case r < 3 || len(d.insts) == 0:
		return &adept2.CreateInstance{TypeName: "online_order"}
	case r < 6:
		return &adept2.CompleteActivity{Instance: pick(), Node: "get_order", User: "ann",
			Outputs: map[string]any{"out": fmt.Sprintf("o-%d", d.rng.Int())}}
	case r < 7:
		return &adept2.Suspend{Instance: pick()}
	case r < 8:
		return &adept2.Resume{Instance: pick()}
	case r < 10:
		return &adept2.AdHoc{Instance: pick(), Ops: sim.OnlineOrderBiasI2()}
	case r < 12:
		return &adept2.Undo{Instance: pick(), All: d.rng.Intn(2) == 0}
	default:
		// Serial-insert a fresh node into the type's tail. The chain is
		// counted on proposal, not success: a link whose predecessor never
		// landed is rejected as invalid, which keeps the stream
		// deterministic across crash sites.
		d.evolves++
		pred := "get_order"
		if d.evolves > 1 {
			pred = fmt.Sprintf("extra_%d", d.evolves-1)
		}
		name := fmt.Sprintf("extra_%d", d.evolves)
		return &adept2.Evolve{TypeName: "online_order", Ops: []adept2.Operation{
			&adept2.SerialInsert{
				Node: &adept2.Node{ID: name, Name: name, Type: adept2.NodeActivity,
					Role: "worker", Template: name},
				Pred: pred,
				Succ: "collect_data",
			},
		}}
	}
}

func (d *faultDriver) step() {
	if d.dead {
		return
	}
	switch d.rng.Intn(3) {
	case 0: // blocking: a nil error IS the durability acknowledgement
		cmd := d.propose()
		res, err := d.sys.Submit(d.ctx, cmd)
		if err != nil {
			d.noteErr(err)
			return
		}
		if inst, ok := res.(*adept2.Instance); ok {
			d.insts = append(d.insts, inst.ID())
			d.ackedInsts = append(d.ackedInsts, inst.ID())
		}
	case 1: // pipelined: acknowledged only when the receipt resolves
		cmd := d.propose()
		r, err := d.sys.SubmitAsync(d.ctx, cmd)
		if err != nil {
			d.noteErr(err)
			return
		}
		id := ""
		if inst, ok := r.Result().(*adept2.Instance); ok {
			id = inst.ID()
			d.insts = append(d.insts, id) // applied live, not yet durable
		}
		d.byReceipt[r] = id
		d.receipts = append(d.receipts, r)
	case 2: // batch: a nil error acknowledges every result
		n := 1 + d.rng.Intn(3)
		batch := make([]adept2.Command, 0, n)
		for i := 0; i < n; i++ {
			batch = append(batch, d.propose())
		}
		results, err := d.sys.SubmitBatch(d.ctx, batch)
		for _, res := range results {
			if inst, ok := res.(*adept2.Instance); ok {
				d.insts = append(d.insts, inst.ID())
				if err == nil {
					d.ackedInsts = append(d.ackedInsts, inst.ID())
				}
			}
		}
		if err != nil {
			d.noteErr(err)
			return
		}
	}
	if len(d.receipts) >= 16 {
		d.drain()
	}
}

func (d *faultDriver) drain() {
	for _, r := range d.receipts {
		if err := r.Wait(d.ctx); err != nil {
			d.noteErr(err)
			continue
		}
		d.ackedSeqs = append(d.ackedSeqs, [2]int{r.Shard(), r.Seq()})
		if id := d.byReceipt[r]; id != "" {
			d.ackedInsts = append(d.ackedInsts, id)
		}
	}
	d.receipts = d.receipts[:0]
}

func (d *faultDriver) run(steps int) {
	for i := 0; i < steps && !d.dead; i++ {
		d.step()
	}
	d.drain()
}

// crashLayouts are the two on-disk layouts every fault property is
// checked against.
var crashLayouts = []struct {
	name string
	cfg  adept2.CheckpointConfig
}{
	{"single-journal", adept2.CheckpointConfig{Every: 16, GroupCommit: true,
		RetryBase: 100 * time.Microsecond, RetryCap: time.Millisecond}},
	{"sharded-4", adept2.CheckpointConfig{Every: 16, GroupCommit: true, Shards: 4,
		RetryBase: 100 * time.Microsecond, RetryCap: time.Millisecond}},
}

// TestCrashPointRecovery is the PR 6 acceptance property test: the same
// random workload is run over an in-memory disk that is killed at every
// I/O site in turn (a profiling run enumerates the sites). After each
// crash — which discards everything not yet fsync-covered — the layout
// must verify clean, recovery must succeed, every ACKNOWLEDGED write
// must still be there, the recovered system must accept new writes, and
// a second recovery of the same bytes must be deterministic.
func TestCrashPointRecovery(t *testing.T) {
	const steps = 40
	for _, l := range crashLayouts {
		t.Run(l.name, func(t *testing.T) {
			// Profiling run on a healthy disk: count the workload's I/O sites.
			ffs := vfs.NewFaultFS(vfs.NewMemFS(), nil)
			sys, err := adept2.Open("wal",
				adept2.WithOrg(sim.Org()), adept2.WithCheckpointing(l.cfg), adept2.WithVFS(ffs))
			if err != nil {
				t.Fatal(err)
			}
			newFaultDriver(t, sys, 7).run(steps)
			if err := sys.Close(); err != nil {
				t.Fatal(err)
			}
			total := ffs.OpCount()
			sites := int64(96)
			if testing.Short() {
				sites = 24
			}
			stride := total/sites + 1
			for site := int64(1); site <= total; site += stride {
				crashRun(t, l.cfg, site, steps)
			}
		})
	}
}

// crashRun replays the workload with the disk dying at the site-th I/O
// operation and checks the recovery properties.
func crashRun(t *testing.T, cfg adept2.CheckpointConfig, site int64, steps int) {
	t.Helper()
	mem := vfs.NewMemFS()
	ffs := vfs.NewFaultFS(mem, vfs.CrashAt(site))
	ctx := context.Background()

	var d *faultDriver
	sys, err := adept2.Open("wal",
		adept2.WithOrg(sim.Org()), adept2.WithCheckpointing(cfg), adept2.WithVFS(ffs))
	if err == nil {
		d = newFaultDriver(t, sys, 7)
		d.run(steps)
		_ = sys.Close() // the dead disk may fail the final flush
	}
	// else: the disk died during the initial open — nothing was
	// acknowledged, recovery below must still produce a working system.

	// Survey the surviving bytes (only fsync-covered state remains).
	rep, err := adept2.VerifyLayout("wal", false, adept2.WithVFS(mem))
	if err != nil {
		t.Fatalf("site %d: verify: %v", site, err)
	}
	for _, p := range rep.Problems {
		t.Fatalf("site %d: layout problem after crash: %s", site, p)
	}
	if d != nil {
		for _, ss := range d.ackedSeqs {
			shard, seq := ss[0], ss[1]
			if shard >= len(rep.Shards) || rep.Shards[shard].LastSeq < seq {
				t.Fatalf("site %d: acknowledged record shard %d seq %d lost (durable head %d)",
					site, shard, seq, rep.Shards[shard].LastSeq)
			}
		}
	}

	got, err := adept2.Open("wal",
		adept2.WithOrg(sim.Org()), adept2.WithCheckpointing(cfg), adept2.WithVFS(mem))
	if err != nil {
		t.Fatalf("site %d: recovery: %v", site, err)
	}
	if d != nil {
		for _, id := range d.ackedInsts {
			if _, ok := got.Instance(id); !ok {
				t.Fatalf("site %d: acknowledged instance %s lost", site, id)
			}
		}
	}
	// Writability probe: the recovered system accepts new durable work.
	if err := got.AddUser(&adept2.User{ID: fmt.Sprintf("probe-%d", site)}); err != nil {
		t.Fatalf("site %d: post-recovery write: %v", site, err)
	}
	if err := got.Health(); err != nil {
		t.Fatalf("site %d: post-recovery health: %v", site, err)
	}
	if err := got.Close(); err != nil {
		t.Fatalf("site %d: close: %v", site, err)
	}
	// Determinism: recovering the same bytes again yields the same state.
	again, err := adept2.Open("wal",
		adept2.WithOrg(sim.Org()), adept2.WithCheckpointing(cfg), adept2.WithVFS(mem))
	if err != nil {
		t.Fatalf("site %d: second recovery: %v", site, err)
	}
	assertSameState(t, got, again)
	if err := again.Close(); err != nil {
		t.Fatalf("site %d: close: %v", site, err)
	}
	_ = ctx
}

// TestTransientFaultsNeverWedge injects sporadic write/sync/truncate
// failures — including torn writes — into the full workload and demands
// the retry machinery absorbs every one: no wedge, every receipt
// resolves, and the final state is byte-identical to a fault-free run.
func TestTransientFaultsNeverWedge(t *testing.T) {
	for _, l := range crashLayouts {
		t.Run(l.name, func(t *testing.T) {
			cfg := l.cfg
			cfg.RetryMax = 6

			ref := transientRun(t, cfg, nil)

			var injected atomic.Int64
			script := func(n int64, op vfs.OpRef) vfs.Decision {
				switch op.Kind {
				case vfs.OpWrite:
					if n%61 == 0 {
						injected.Add(1)
						return vfs.Decision{Err: vfs.ErrInjected, TornPrefix: 3}
					}
					fallthrough
				case vfs.OpSync, vfs.OpTruncate, vfs.OpSyncDir, vfs.OpStatFile:
					if n%23 == 0 {
						injected.Add(1)
						return vfs.Decision{Err: vfs.ErrInjected}
					}
				}
				return vfs.Decision{}
			}
			faulty := transientRun(t, cfg, script)
			if injected.Load() == 0 {
				t.Fatal("fault script never fired — the workload shrank under the schedule")
			}
			assertSameState(t, ref, faulty)
		})
	}
}

// transientRun executes the deterministic workload over MemFS with an
// optional fault script and returns the closed system for comparison.
func transientRun(t *testing.T, cfg adept2.CheckpointConfig, script vfs.Script) *adept2.System {
	t.Helper()
	// The script is armed only after Open: recovery-time faults are the
	// crash-point test's domain; this one targets the serving pipeline.
	ffs := vfs.NewFaultFS(vfs.NewMemFS(), nil)
	sys, err := adept2.Open("wal",
		adept2.WithOrg(sim.Org()), adept2.WithCheckpointing(cfg), adept2.WithVFS(ffs))
	if err != nil {
		t.Fatal(err)
	}
	ffs.SetScript(script)
	d := newFaultDriver(t, sys, 11)
	d.run(60)
	if d.dead {
		t.Fatal("transient faults wedged the pipeline")
	}
	if hi := sys.HealthInfo(); hi.Wedged != nil {
		t.Fatalf("wedged under transient faults: %v", hi.Wedged)
	}
	if err := sys.Close(); err != nil && script == nil {
		t.Fatal(err)
	}
	return sys
}

// TestPersistentFaultDegradesAndHeals checks the degraded-mode contract:
// a persistent journal fault wedges the pipeline after the retry budget;
// reads and pagination keep serving while every submission path fails
// fast (un-applied); Heal with the fault still present fails; once the
// fault clears, Heal restores full write service in place, and no
// acknowledged OR accepted write was lost across the wedge/heal cycle.
func TestPersistentFaultDegradesAndHeals(t *testing.T) {
	for _, l := range crashLayouts {
		t.Run(l.name, func(t *testing.T) {
			cfg := l.cfg
			cfg.Every = -1 // no checkpoints: the journal is the story here
			cfg.RetryMax = 2
			ctx := context.Background()
			ffs := vfs.NewFaultFS(vfs.NewMemFS(), nil)
			sys, err := adept2.Open("wal",
				adept2.WithOrg(sim.Org()), adept2.WithCheckpointing(cfg), adept2.WithVFS(ffs))
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.Deploy(sim.OnlineOrder()); err != nil {
				t.Fatal(err)
			}
			res, err := sys.Submit(ctx, &adept2.CreateInstance{TypeName: "online_order"})
			if err != nil {
				t.Fatal(err)
			}
			ackedBefore := res.(*adept2.Instance).ID()

			// The disk stops persisting anything, persistently.
			ffs.SetScript(vfs.FailFrom(1, vfs.ErrInjected,
				vfs.OpWrite, vfs.OpSync, vfs.OpTruncate, vfs.OpStatFile))

			// The tripping command is ACCEPTED (buffered append is memory-
			// only) but its receipt settles with the wedge.
			r, err := sys.SubmitAsync(ctx, &adept2.CreateInstance{TypeName: "online_order"})
			if err != nil {
				t.Fatal(err)
			}
			accepted := r.Result().(*adept2.Instance).ID()
			if err := r.Wait(ctx); !errors.Is(err, adept2.ErrWedged) {
				t.Fatalf("receipt under persistent fault: %v, want ErrWedged", err)
			}

			// Degraded mode: submissions fail fast, BEFORE the mutation.
			n := len(sys.Instances())
			if _, err := sys.Submit(ctx, &adept2.CreateInstance{TypeName: "online_order"}); !errors.Is(err, adept2.ErrWedged) {
				t.Fatalf("submit while wedged: %v, want ErrWedged", err)
			}
			var e *adept2.Error
			_, err = sys.SubmitBatch(ctx, []adept2.Command{&adept2.CreateInstance{TypeName: "online_order"}})
			if !errors.As(err, &e) || e.Code != adept2.CodeWedged || e.Applied {
				t.Fatalf("batch while wedged: %+v, want un-applied CodeWedged", err)
			}
			if got := len(sys.Instances()); got != n {
				t.Fatalf("wedged submission mutated state: %d -> %d instances", n, got)
			}
			// Reads, pagination, and health keep serving.
			if items, _ := sys.WorkItemsPage("ann", "", 10); items == nil && len(sys.WorkItems("ann")) > 0 {
				t.Fatal("pagination stopped serving while wedged")
			}
			if _, next := sys.InstancesPage("", 1); next == "" && len(sys.Instances()) > 1 {
				t.Fatal("instance pagination stopped serving while wedged")
			}
			hi := sys.HealthInfo()
			if hi.Wedged == nil || len(hi.WedgedShards) == 0 {
				t.Fatalf("HealthInfo hides the wedge: %+v", hi)
			}
			// Heal cannot succeed while the fault persists.
			if err := sys.Heal(ctx); err == nil {
				t.Fatal("heal succeeded with the fault still present")
			}
			// Fault clears; heal restores service in place.
			ffs.SetScript(nil)
			if err := sys.Heal(ctx); err != nil {
				t.Fatalf("heal: %v", err)
			}
			if err := sys.Health(); err != nil {
				t.Fatalf("health after heal: %v", err)
			}
			res, err = sys.Submit(ctx, &adept2.CreateInstance{TypeName: "online_order"})
			if err != nil {
				t.Fatalf("submit after heal: %v", err)
			}
			afterHeal := res.(*adept2.Instance).ID()
			if err := sys.Close(); err != nil {
				t.Fatal(err)
			}

			// Everything acknowledged or accepted survives recovery: the
			// wedge window's record was retained and re-flushed by Heal.
			got, err := adept2.Open("wal",
				adept2.WithOrg(sim.Org()), adept2.WithCheckpointing(cfg), adept2.WithVFS(ffs))
			if err != nil {
				t.Fatal(err)
			}
			defer got.Close()
			for _, id := range []string{ackedBefore, accepted, afterHeal} {
				if _, ok := got.Instance(id); !ok {
					t.Fatalf("instance %s lost across wedge/heal", id)
				}
			}
			assertSameState(t, sys, got)
		})
	}
}

// TestReceiptWaitCancelRacesWedgeThenHeal pins the Receipt.Wait
// contract under the worst interleaving: a Wait abandoned by ctx
// cancellation while the committer is failing must NOT settle the
// receipt; after the pipeline wedges and is healed, a later Wait on the
// same receipt resolves nil and the record is durable.
func TestReceiptWaitCancelRacesWedgeThenHeal(t *testing.T) {
	cfg := adept2.CheckpointConfig{Every: -1, GroupCommit: true,
		RetryMax: 3, RetryBase: 5 * time.Millisecond, RetryCap: 10 * time.Millisecond}
	ctx := context.Background()
	ffs := vfs.NewFaultFS(vfs.NewMemFS(), nil)
	sys, err := adept2.Open("wal",
		adept2.WithOrg(sim.Org()), adept2.WithCheckpointing(cfg), adept2.WithVFS(ffs))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Deploy(sim.OnlineOrder()); err != nil {
		t.Fatal(err)
	}

	ffs.SetScript(vfs.FailFrom(1, vfs.ErrInjected,
		vfs.OpWrite, vfs.OpSync, vfs.OpTruncate, vfs.OpStatFile))
	r, err := sys.SubmitAsync(ctx, &adept2.CreateInstance{TypeName: "online_order"})
	if err != nil {
		t.Fatal(err)
	}
	id := r.Result().(*adept2.Instance).ID()

	// Cancel a Wait while the committer is still retrying (or already
	// wedged — both must map to CodeCanceled, not settle the receipt).
	shortCtx, cancel := context.WithTimeout(ctx, time.Millisecond)
	err = r.Wait(shortCtx)
	cancel()
	var e *adept2.Error
	if err == nil || !errors.As(err, &e) {
		t.Fatalf("canceled wait: %v", err)
	}
	if e.Code != adept2.CodeCanceled && e.Code != adept2.CodeWedged {
		t.Fatalf("canceled wait code: %s", e.Code)
	}

	// Let the retry budget exhaust: the pipeline wedges.
	deadline := time.Now().Add(5 * time.Second)
	for sys.HealthInfo().Wedged == nil {
		if time.Now().After(deadline) {
			t.Fatal("pipeline never wedged")
		}
		time.Sleep(time.Millisecond)
	}

	ffs.SetScript(nil)
	if err := sys.Heal(ctx); err != nil {
		t.Fatalf("heal: %v", err)
	}
	// A Wait abandoned by cancellation (not settled) resolves after heal.
	if err := r.Wait(ctx); err != nil && !errors.Is(err, adept2.ErrWedged) {
		t.Fatalf("wait after heal: %v", err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := adept2.Open("wal",
		adept2.WithOrg(sim.Org()), adept2.WithCheckpointing(cfg), adept2.WithVFS(ffs))
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	if _, ok := got.Instance(id); !ok {
		t.Fatalf("instance %s lost across cancel/wedge/heal", id)
	}
}

// TestHealForcesCheckpoint: healing a wedged pipeline forces a
// checkpoint, so the journal suffix written during the wedge era —
// records that were retried, buffered, and re-flushed — never needs to
// be replayed again: the next recovery starts at the heal-time snapshot
// and replays only records submitted after it.
func TestHealForcesCheckpoint(t *testing.T) {
	cfg := adept2.CheckpointConfig{Every: -1, GroupCommit: true, RetryMax: 2,
		RetryBase: 100 * time.Microsecond, RetryCap: time.Millisecond}
	ctx := context.Background()
	ffs := vfs.NewFaultFS(vfs.NewMemFS(), nil)
	sys, err := adept2.Open("wal",
		adept2.WithOrg(sim.Org()), adept2.WithCheckpointing(cfg), adept2.WithVFS(ffs))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Deploy(sim.OnlineOrder()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := sys.Submit(ctx, &adept2.CreateInstance{TypeName: "online_order"}); err != nil {
			t.Fatal(err)
		}
	}

	// Wedge the pipeline with a persistent fault; the tripping record is
	// accepted but only becomes durable when Heal re-flushes it.
	ffs.SetScript(vfs.FailFrom(1, vfs.ErrInjected,
		vfs.OpWrite, vfs.OpSync, vfs.OpTruncate, vfs.OpStatFile))
	r, err := sys.SubmitAsync(ctx, &adept2.CreateInstance{TypeName: "online_order"})
	if err != nil {
		t.Fatal(err)
	}
	accepted := r.Result().(*adept2.Instance).ID()
	if err := r.Wait(ctx); !errors.Is(err, adept2.ErrWedged) {
		t.Fatalf("receipt under persistent fault: %v, want ErrWedged", err)
	}
	ffs.SetScript(nil)
	if err := sys.Heal(ctx); err != nil {
		t.Fatalf("heal: %v", err)
	}
	healSeq := sys.JournalSeq()

	// Only these records land after the forced checkpoint.
	const suffix = 3
	for i := 0; i < suffix; i++ {
		if _, err := sys.Submit(ctx, &adept2.CreateInstance{TypeName: "online_order"}); err != nil {
			t.Fatal(err)
		}
	}
	tail := sys.JournalSeq()
	if tail != healSeq+suffix {
		t.Fatalf("journal grew %d -> %d, want exactly %d suffix records", healSeq, tail, suffix)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := adept2.Open("wal",
		adept2.WithOrg(sim.Org()), adept2.WithCheckpointing(cfg), adept2.WithVFS(ffs))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	info := rec.Recovery()
	if info.FullReplay || info.SnapshotSeq != healSeq {
		t.Fatalf("recovery ignored the heal-forced checkpoint: %+v (heal seq %d)", info, healSeq)
	}
	if info.Replayed != suffix {
		t.Fatalf("replayed %d records, want only the %d-record post-heal suffix", info.Replayed, suffix)
	}
	if _, ok := rec.Instance(accepted); !ok {
		t.Fatalf("wedge-era instance %s lost across heal checkpoint", accepted)
	}
	assertSameState(t, sys, rec)
}

// TestCheckpointDirFsyncFailureDoesNotWedge: a failing snapshot-directory
// fsync makes background checkpoints fail (visible via Health and
// HealthInfo.CheckpointErr) but must never wedge the write path; after
// the fault clears, Heal resets the checkpoint backoff and the next
// checkpoint succeeds.
func TestCheckpointDirFsyncFailureDoesNotWedge(t *testing.T) {
	cfg := adept2.CheckpointConfig{Every: 4, GroupCommit: true,
		RetryBase: 100 * time.Microsecond, RetryCap: time.Millisecond}
	ctx := context.Background()
	ffs := vfs.NewFaultFS(vfs.NewMemFS(), nil)
	sys, err := adept2.Open("wal",
		adept2.WithOrg(sim.Org()), adept2.WithCheckpointing(cfg), adept2.WithVFS(ffs))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Deploy(sim.OnlineOrder()); err != nil {
		t.Fatal(err)
	}

	ffs.SetScript(vfs.FailFrom(1, vfs.ErrInjected, vfs.OpSyncDir))
	for i := 0; i < 8; i++ {
		if _, err := sys.Submit(ctx, &adept2.CreateInstance{TypeName: "online_order"}); err != nil {
			t.Fatalf("submit during checkpoint failure: %v", err)
		}
	}
	if err := sys.WaitCheckpoints(); err == nil {
		t.Fatal("checkpoint succeeded with snapshot-dir fsync failing")
	}
	hi := sys.HealthInfo()
	if hi.CheckpointErr == nil {
		t.Fatal("HealthInfo hides the checkpoint failure")
	}
	if hi.Wedged != nil {
		t.Fatalf("checkpoint failure wedged the write path: %v", hi.Wedged)
	}

	ffs.SetScript(nil)
	if err := sys.Heal(ctx); err != nil { // clears the sticky error + backoff
		t.Fatalf("heal: %v", err)
	}
	for i := 0; i < 8; i++ {
		if _, err := sys.Submit(ctx, &adept2.CreateInstance{TypeName: "online_order"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.WaitCheckpoints(); err != nil {
		t.Fatalf("checkpoint after heal: %v", err)
	}
	if err := sys.Health(); err != nil {
		t.Fatalf("health after heal: %v", err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
}
