package adept2_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"adept2"
	"adept2/internal/obs"
	"adept2/internal/sim"
)

// openMetrics opens a system for the telemetry tests: seeded org, no
// auto-checkpointing, every submission traced.
func openMetrics(t *testing.T, path string, extra ...adept2.Option) *adept2.System {
	t.Helper()
	opts := append([]adept2.Option{
		adept2.WithOrg(sim.Org()),
		adept2.WithCheckpointing(adept2.CheckpointConfig{Every: -1, GroupCommit: true}),
		adept2.WithTraceSampling(512, 1),
	}, extra...)
	sys, err := adept2.Open(path, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestMetricsReconcile drives a randomized mix of blocking, async,
// batch, and failing submissions, then checks the telemetry plane
// against ground truth the test kept on the side: ok/error counts per
// op, the latency-histogram bookkeeping invariant, the appends counter
// against the journal's actual growth, and the engine gauges against
// the engine's own accessors.
func TestMetricsReconcile(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(8))
	sys := openMetrics(t, filepath.Join(t.TempDir(), "wal.ndjson"))
	defer sys.Close()

	base := sys.Metrics().Shards[0].Seq

	wantOK := map[string]int64{}
	wantErr := map[string]int64{}
	if err := sys.Deploy(sim.OnlineOrder()); err != nil {
		t.Fatal(err)
	}
	wantOK["deploy"]++

	const insts = 4
	ids := make([]string, insts)
	suspended := make([]bool, insts)
	for i := range ids {
		inst, err := sys.CreateInstance("online_order")
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = inst.ID()
		wantOK["create"]++
	}

	toggleCmd := func(i int) adept2.Command {
		if suspended[i] {
			suspended[i] = false
			wantOK["resume"]++
			return &adept2.Resume{Instance: ids[i]}
		}
		suspended[i] = true
		wantOK["suspend"]++
		return &adept2.Suspend{Instance: ids[i]}
	}

	for step := 0; step < 300; step++ {
		i := rng.Intn(insts)
		switch rng.Intn(4) {
		case 0: // blocking
			if _, err := sys.Submit(ctx, toggleCmd(i)); err != nil {
				t.Fatal(err)
			}
		case 1: // async + awaited receipt
			r, err := sys.SubmitAsync(ctx, toggleCmd(i))
			if err != nil {
				t.Fatal(err)
			}
			if err := r.Wait(ctx); err != nil {
				t.Fatal(err)
			}
		case 2: // batch window on one instance
			n := 1 + rng.Intn(6)
			batch := make([]adept2.Command, 0, n)
			for k := 0; k < n; k++ {
				batch = append(batch, toggleCmd(i))
			}
			if _, err := sys.SubmitBatch(ctx, batch); err != nil {
				t.Fatal(err)
			}
		case 3: // guaranteed failure: unknown instance
			if _, err := sys.Submit(ctx, &adept2.Suspend{Instance: "ghost"}); err == nil {
				t.Fatal("suspend of unknown instance succeeded")
			}
			wantErr["suspend"]++
		}
	}

	snap := sys.Metrics()

	// Outcome counters match the ground truth the test accumulated.
	for op, want := range wantOK {
		if got := snap.Ops[op].OK; got != want {
			t.Errorf("op %s: ok = %d, want %d", op, got, want)
		}
	}
	for op, want := range wantErr {
		var got int64
		for _, n := range snap.Ops[op].Errors {
			got += n
		}
		if got != want {
			t.Errorf("op %s: errors = %d (%v), want %d", op, got, snap.Ops[op].Errors, want)
		}
	}
	if n := snap.Ops["suspend"].Errors["not_found"]; n != wantErr["suspend"] {
		t.Errorf("suspend not_found = %d, want %d", n, wantErr["suspend"])
	}

	// Latency histograms only see singular submissions: OK - Batched.
	for op, o := range snap.Ops {
		if o.OK-o.Batched != o.Latency.Count {
			t.Errorf("op %s: latency count %d != ok %d - batched %d",
				op, o.Latency.Count, o.OK, o.Batched)
		}
	}

	// The shard appends counter equals the journal's actual growth.
	var appends, growth int64
	for _, sh := range snap.Shards {
		appends += sh.Appends
		growth += int64(sh.Seq)
	}
	growth -= int64(base)
	if appends != growth {
		t.Errorf("shard appends %d != journal growth %d", appends, growth)
	}
	if appends == 0 {
		t.Error("no appends counted")
	}

	// Engine gauges agree with the engine's own accessors.
	if snap.Engine.Instances != len(sys.Instances()) {
		t.Errorf("instances gauge %d != %d", snap.Engine.Instances, len(sys.Instances()))
	}
	if snap.Engine.OpenExceptions != len(sys.OpenExceptions()) {
		t.Errorf("open-exceptions gauge %d != %d", snap.Engine.OpenExceptions, len(sys.OpenExceptions()))
	}

	// Every submission was traced (1/1 sampling): the ring holds its
	// capacity's worth of spans, ordered by submit time, with the
	// blocking/awaited ones carrying the full submit→applied timeline.
	if len(snap.Traces) == 0 {
		t.Fatal("no trace spans captured")
	}
	prev := int64(0)
	for _, sp := range snap.Traces {
		if sp.Op == "" || (sp.Seq == 0 && sp.Err == "") {
			t.Fatalf("incomplete span: %+v", sp)
		}
		if sp.SubmitNanos < prev {
			t.Fatal("trace spans not ordered by submit time")
		}
		prev = sp.SubmitNanos
		if sp.AppliedNanos != 0 && sp.AppliedNanos < sp.SubmitNanos {
			t.Fatalf("span applied before submit: %+v", sp)
		}
	}
}

// TestMetricsReplayRecordsNothing pins the recovery rule: replaying a
// populated journal at Open must leave every live-path family at zero —
// only the recovery family records, and the shard seq still shows the
// journal's real head.
func TestMetricsReplayRecordsNothing(t *testing.T) {
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "wal.ndjson")
	sys := openMetrics(t, path)
	if err := sys.Deploy(sim.OnlineOrder()); err != nil {
		t.Fatal(err)
	}
	inst, err := sys.CreateInstance("online_order")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := sys.Submit(ctx, toggle(inst.ID(), i)); err != nil {
			t.Fatal(err)
		}
	}
	head := sys.JournalSeq()
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	sys = openMetrics(t, path)
	defer sys.Close()
	snap := sys.Metrics()
	if len(snap.Ops) != 0 {
		t.Errorf("replay recorded op metrics: %v", snap.Ops)
	}
	for _, sh := range snap.Shards {
		if sh.Appends != 0 {
			t.Errorf("replay counted %d appends on shard %d", sh.Appends, sh.Shard)
		}
	}
	if snap.Recovery.Count != 1 {
		t.Errorf("recovery count = %d, want 1", snap.Recovery.Count)
	}
	if snap.Recovery.Replayed == 0 {
		t.Error("recovery replayed nothing despite populated journal")
	}
	if snap.Shards[0].Seq != head {
		t.Errorf("shard seq %d != journal head %d", snap.Shards[0].Seq, head)
	}
	if len(snap.Traces) != 0 {
		t.Errorf("replay published %d trace spans", len(snap.Traces))
	}
}

// TestMetricsDisabled checks the switched-off plane: no accumulated
// families, but the instantaneous gauges (engine, shard seq, health)
// still serve from live state.
func TestMetricsDisabled(t *testing.T) {
	ctx := context.Background()
	sys := openMetrics(t, filepath.Join(t.TempDir(), "wal.ndjson"), adept2.WithMetricsDisabled())
	defer sys.Close()
	if err := sys.Deploy(sim.OnlineOrder()); err != nil {
		t.Fatal(err)
	}
	inst, err := sys.CreateInstance("online_order")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Submit(ctx, &adept2.Suspend{Instance: inst.ID()}); err != nil {
		t.Fatal(err)
	}
	snap := sys.Metrics()
	if len(snap.Ops) != 0 || len(snap.Traces) != 0 {
		t.Errorf("disabled plane accumulated: ops %v, %d traces", snap.Ops, len(snap.Traces))
	}
	if snap.Shards[0].Seq != sys.JournalSeq() {
		t.Errorf("shard seq gauge %d != journal %d", snap.Shards[0].Seq, sys.JournalSeq())
	}
	if snap.Engine.Instances != 1 {
		t.Errorf("instances gauge = %d, want 1", snap.Engine.Instances)
	}
}

// TestMetricsServer drives the HTTP plane under live traffic: /metrics
// must parse as Prometheus text and cover the core families, the JSON
// snapshot must round-trip strictly into obs.Snapshot, and /healthz
// reports healthy.
func TestMetricsServer(t *testing.T) {
	ctx := context.Background()
	sys := openMetrics(t, filepath.Join(t.TempDir(), "wal.ndjson"),
		adept2.WithMetricsServer("127.0.0.1:0"))
	defer sys.Close()
	if err := sys.Deploy(sim.OnlineOrder()); err != nil {
		t.Fatal(err)
	}
	inst, err := sys.CreateInstance("online_order")
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { // concurrent load while scraping
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := sys.Submit(ctx, toggle(inst.ID(), i)); err != nil {
				return
			}
		}
	}()

	addr := sys.MetricsAddr()
	if addr == "" {
		t.Fatal("no metrics address")
	}

	body := func(path string, wantStatus int) []byte {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != wantStatus {
			t.Fatalf("%s: status %d, want %d: %s", path, resp.StatusCode, wantStatus, b)
		}
		return b
	}

	text := string(body("/metrics", 200))
	for _, fam := range []string{
		"adept2_submit_total", "adept2_submit_latency_seconds",
		"adept2_committer_fsync_seconds", "adept2_checkpoint_total",
		"adept2_exception_failures_total", "adept2_sweep_lag_seconds",
		"adept2_instances", "adept2_wedged",
	} {
		if !strings.Contains(text, "# TYPE "+fam+" ") {
			t.Errorf("family %s missing from /metrics", fam)
		}
	}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 || !strings.HasPrefix(line, "adept2_") {
			t.Fatalf("unparseable sample line: %q", line)
		}
		if _, err := fmt.Sscanf(line[i+1:], "%g", new(float64)); err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
	}

	raw := body("/metrics.json", 200)
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	var snap obs.Snapshot
	if err := dec.Decode(&snap); err != nil {
		t.Fatalf("JSON snapshot does not round-trip: %v", err)
	}
	if len(snap.Ops) == 0 {
		t.Error("JSON snapshot has no op families under load")
	}

	var health struct {
		Healthy bool `json:"healthy"`
	}
	if err := json.Unmarshal(body("/healthz", 200), &health); err != nil {
		t.Fatal(err)
	}
	if !health.Healthy {
		t.Error("healthz reports unhealthy on a healthy system")
	}

	close(stop)
	<-done
}

// TestSweepTimer covers the in-process deadline sweeper: a deadline
// expires by the injected clock, the timer (not any test call) fires
// the sweep that escalates it, the sweep families record, and Close
// shuts the timer down cleanly.
func TestSweepTimer(t *testing.T) {
	// The sweeper goroutine reads the clock concurrently with the test
	// advancing it, so this test needs an atomic clock, not testClock.
	var clk atomicClock
	clk.set(time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC))
	sys, err := adept2.Open(filepath.Join(t.TempDir(), "wal.ndjson"),
		adept2.WithOrg(sim.Org()),
		adept2.WithClock(clk.Now),
		adept2.WithCheckpointing(adept2.CheckpointConfig{Every: -1}),
		adept2.WithSweepInterval(2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	id := startFix(t, sys)
	clk.advance(3 * time.Minute) // past fix's 2m deadline

	deadline := time.Now().Add(10 * time.Second)
	for {
		snap := sys.Metrics()
		if snap.Exception.Sweeps > 0 && snap.Exception.Escalations == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("timer never escalated: sweeps=%d escalations=%d",
				snap.Exception.Sweeps, snap.Exception.Escalations)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !hasItem(sys, "dan", id, "fix") {
		t.Error("escalation did not offer fix to the sales role")
	}
	snap := sys.Metrics()
	if snap.Exception.SweepNanos.Count == 0 {
		t.Error("sweep duration histogram empty")
	}
	if snap.Engine.OpenExceptions != len(sys.OpenExceptions()) {
		t.Errorf("open-exceptions gauge %d != %d",
			snap.Engine.OpenExceptions, len(sys.OpenExceptions()))
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
}

// atomicClock is a logical clock safe for concurrent readers (the
// in-process sweeper polls it from its own goroutine).
type atomicClock struct{ nanos atomic.Int64 }

func (c *atomicClock) set(t time.Time)         { c.nanos.Store(t.UnixNano()) }
func (c *atomicClock) Now() time.Time          { return time.Unix(0, c.nanos.Load()) }
func (c *atomicClock) advance(d time.Duration) { c.nanos.Add(d.Nanoseconds()) }

// TestExceptionMetrics reconciles the exception families against the
// loop's ground truth: failures/retries from the op counters, policy
// action counts, and escalation state surviving in the gauges.
func TestExceptionMetrics(t *testing.T) {
	ctx := context.Background()
	clk := newTestClock()
	sys := openRepair(t, filepath.Join(t.TempDir(), "wal.ndjson"), clk,
		adept2.RetryThenSuspend(3, time.Minute))
	defer sys.Close()
	id := startFix(t, sys)

	if err := sys.Fail(ctx, id, "fix", "ann", "printer on fire"); err != nil {
		t.Fatal(err)
	}
	snap := sys.Metrics()
	if snap.Exception.Failures != 1 {
		t.Errorf("failures = %d, want 1", snap.Exception.Failures)
	}
	if snap.Exception.Actions["retry"] != 1 {
		t.Errorf("policy actions = %v, want retry=1", snap.Exception.Actions)
	}

	// The backoff sweep lifts the retry: counted as a sweep + a retry op.
	clk.advance(2 * time.Minute)
	if _, err := sys.SweepDeadlines(ctx, clk.Now()); err != nil {
		t.Fatal(err)
	}
	snap = sys.Metrics()
	if snap.Exception.Sweeps != 1 {
		t.Errorf("sweeps = %d, want 1", snap.Exception.Sweeps)
	}
	if snap.Exception.Retries != 1 {
		t.Errorf("retries = %d, want 1", snap.Exception.Retries)
	}
	if snap.Engine.OpenExceptions != len(sys.OpenExceptions()) {
		t.Errorf("open-exceptions gauge %d != %d",
			snap.Engine.OpenExceptions, len(sys.OpenExceptions()))
	}
}

// TestCheckpointMetrics checks the checkpoint family and the snapshot
// store's byte counters across a checkpoint and the recovery that loads
// it.
func TestCheckpointMetrics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.ndjson")
	sys := openMetrics(t, path)
	if err := sys.Deploy(sim.OnlineOrder()); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.CreateInstance("online_order"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	snap := sys.Metrics()
	if snap.Checkpoint.Count != 1 || snap.Checkpoint.Failures != 0 {
		t.Errorf("checkpoint count=%d failures=%d, want 1/0",
			snap.Checkpoint.Count, snap.Checkpoint.Failures)
	}
	if snap.Checkpoint.BytesWritten == 0 {
		t.Error("checkpoint wrote zero bytes")
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	sys = openMetrics(t, path)
	defer sys.Close()
	snap = sys.Metrics()
	if snap.Checkpoint.BytesRead == 0 {
		t.Error("recovery read zero snapshot bytes despite checkpoint")
	}
	if snap.Recovery.Count != 1 {
		t.Errorf("recovery count = %d, want 1", snap.Recovery.Count)
	}
}
