package graph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"adept2/internal/model"
)

// genSchema builds a random block-structured schema directly with the
// builder (the graph package cannot import internal/sim, which would
// create an import cycle through verify).
func genSchema(rng *rand.Rand) *model.Schema {
	b := model.NewBuilder("prop")
	var n int
	var frag func(depth int) model.Fragment
	frag = func(depth int) model.Fragment {
		if depth <= 0 || rng.Float64() < 0.5 {
			n++
			return b.Activity(id("a", n), "A", model.WithRole("r"))
		}
		switch rng.Intn(3) {
		case 0:
			return b.Parallel(frag(depth-1), frag(depth-1))
		case 1:
			return b.Choice("", frag(depth-1), frag(depth-1))
		default:
			return b.Loop(frag(depth-1), "", 3)
		}
	}
	root := b.Seq(frag(3), frag(2))
	s, err := b.Build(root)
	if err != nil {
		panic(err)
	}
	return s
}

func id(prefix string, n int) string {
	const digits = "0123456789"
	out := []byte(prefix)
	if n == 0 {
		return prefix + "0"
	}
	var buf []byte
	for n > 0 {
		buf = append([]byte{digits[n%10]}, buf...)
		n /= 10
	}
	return string(append(out, buf...))
}

// TestTopoOrderProperty: every control edge respects the topological
// order, and the order covers all nodes exactly once.
func TestTopoOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		s := genSchema(rand.New(rand.NewSource(seed)))
		order, err := TopoOrder(s, Control)
		if err != nil {
			return false
		}
		pos := make(map[string]int, len(order))
		for i, n := range order {
			if _, dup := pos[n]; dup {
				return false
			}
			pos[n] = i
		}
		if len(pos) != len(s.NodeIDs()) {
			return false
		}
		for _, e := range s.Edges() {
			if e.Type == model.EdgeControl && pos[e.From] >= pos[e.To] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestAnalyzeProperty: builder-generated schemas always analyze; every
// split has a matching join of the right type; branches partition the
// inside; blocks nest properly (checked by Analyze itself).
func TestAnalyzeProperty(t *testing.T) {
	f := func(seed int64) bool {
		s := genSchema(rand.New(rand.NewSource(seed)))
		info, err := Analyze(s)
		if err != nil {
			return false
		}
		for _, blk := range info.Blocks() {
			split, _ := s.Node(blk.Split)
			join, _ := s.Node(blk.Join)
			want, ok := split.Type.MatchingJoin()
			if !ok || join.Type != want {
				return false
			}
			// Branch union equals Inside and branches are disjoint.
			seen := make(map[string]int)
			for _, br := range blk.Branches {
				for n := range br {
					seen[n]++
				}
			}
			if len(seen) != len(blk.Inside) {
				return false
			}
			for n, c := range seen {
				if c != 1 || !blk.Inside[n] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestDivergenceSymmetry: Divergence(a,b) agrees with Divergence(b,a) on
// the block, and diverging nodes are never control-ordered.
func TestDivergenceSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := genSchema(rng)
		info, err := Analyze(s)
		if err != nil {
			return false
		}
		ids := s.NodeIDs()
		for k := 0; k < 20; k++ {
			a := ids[rng.Intn(len(ids))]
			b := ids[rng.Intn(len(ids))]
			blkAB, brA, brB, okAB := info.Divergence(a, b)
			blkBA, brB2, brA2, okBA := info.Divergence(b, a)
			if okAB != okBA {
				return false
			}
			if okAB {
				if blkAB != blkBA || brA != brA2 || brB != brB2 {
					return false
				}
				// Diverging nodes cannot be ordered by control flow.
				if HasPath(s, a, b, Control) || HasPath(s, b, a, Control) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
