// Package persist implements durable command journaling for the ADEPT2
// runtime: every state-changing command (deploy, instance creation,
// activity completion, ad-hoc change, schema evolution) is appended to a
// newline-delimited JSON write-ahead journal. Recovery replays the journal
// through the public API, reconstructing the exact engine state — the
// substitution for the paper prototype's RDBMS-backed storage layer (see
// DESIGN.md).
//
// Durability modes. A file-backed journal opened with OpenJournal fsyncs
// after every Append (one record = one write + one fsync). The group-commit
// path in internal/durable instead opens the journal with
// OpenJournalBuffered — appends land in a user-space buffer and callers
// coordinate a shared Flush (one buffered write + one fsync per *batch* of
// concurrent appends). In both modes a record is only considered durable
// after the fsync covering it returned.
//
// Compaction. A journal normally starts at sequence number 1. After
// checkpointing (internal/durable), the prefix already covered by a
// snapshot may be dropped: a compacted journal starts at an arbitrary
// sequence number and must stay contiguous from its first record. Readers
// accept such journals; recovery is then only possible through a snapshot
// whose sequence number reaches the record before the journal's first (the
// facade enforces this — see adept2.Open).
package persist

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// Record is one journaled command. The record format is versioned by
// field presence, not an explicit tag: v1 records (through PR 3) carry
// seq/op/args; v2 records add the optional epoch reference for sharded
// journals. Decoders accept both — a missing epoch is zero — and Seq
// stays the first encoded field so the fast sequence probe (quickSeq)
// works on either version.
type Record struct {
	// Seq is the journal sequence number (1-based).
	Seq int `json:"seq"`
	// Epoch references the control-log sequence number the command was
	// issued under (sharded journals only; see internal/durable/sharded).
	// Zero — and omitted on the wire — for unsharded journals and for
	// control-shard records, keeping single-journal layouts byte-
	// compatible with the pre-epoch format.
	Epoch int `json:"epoch,omitempty"`
	// Op names the command (facade-defined, e.g. "deploy", "complete").
	Op string `json:"op"`
	// Args carries the command arguments.
	Args json.RawMessage `json:"args"`
}

// Journal is an append-only command log. It is safe for concurrent use.
type Journal struct {
	mu     sync.Mutex
	w      io.Writer
	file   *os.File      // non-nil when backed by a file
	bw     *bufio.Writer // non-nil for buffered (group-commit) journals
	seq    int
	size   int64 // bytes of durable-intent records (file-backed, unbuffered)
	sync   bool
	failed bool // a write error left the journal in an unknown physical state

	// Append serializes into per-journal buffers (guarded by mu) instead
	// of allocating fresh ones per record; the encoders are lazily bound
	// to the buffers on first use.
	lineBuf bytes.Buffer
	argsBuf bytes.Buffer
	lineEnc *json.Encoder
	argsEnc *json.Encoder
}

// NewJournal wraps an arbitrary writer (tests use a bytes.Buffer).
func NewJournal(w io.Writer) *Journal { return &Journal{w: w} }

// OpenJournal opens (or creates) a file-backed journal in append mode. If
// the file already holds records, new sequence numbers continue after the
// highest existing one.
func OpenJournal(path string) (*Journal, error) {
	return openJournal(path, false)
}

// OpenJournalBuffered opens a file-backed journal whose appends land in a
// user-space buffer and are NOT individually fsynced: records become
// durable only when Flush is called. The group-commit committer
// (internal/durable) uses this mode to turn many concurrent appends into
// one buffered write plus one fsync per batch.
func OpenJournalBuffered(path string) (*Journal, error) {
	return openJournal(path, true)
}

func openJournal(path string, buffered bool) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: open journal: %w", err)
	}
	// Only the sequence numbers are needed here; skip decoding records.
	_, tail, err := scanRecords(f, int(^uint(0)>>1))
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := repairTail(f, tail); err != nil {
		f.Close()
		return nil, err
	}
	return newFileJournal(f, buffered, tail.LastSeq), nil
}

// newFileJournal wires a Journal over an already-positioned append fd.
func newFileJournal(f *os.File, buffered bool, lastSeq int) *Journal {
	j := &Journal{w: f, file: f, sync: !buffered, seq: lastSeq}
	if st, err := f.Stat(); err == nil {
		j.size = st.Size()
	}
	if buffered {
		j.bw = bufio.NewWriterSize(f, 1<<16)
		j.w = j.bw
	}
	return j
}

// repairTail makes the physical end of the journal append-safe: torn or
// corrupt trailing bytes past the last intact record are truncated, and a
// final record that lost its newline terminator gets one, so the next
// append can never concatenate onto damaged data (which would turn a
// tolerated torn tail into unrecoverable mid-file corruption).
func repairTail(f *os.File, tail TailInfo) error {
	st, err := f.Stat()
	if err != nil {
		return fmt.Errorf("persist: repair tail: %w", err)
	}
	if st.Size() > tail.ValidSize {
		if err := f.Truncate(tail.ValidSize); err != nil {
			return fmt.Errorf("persist: truncate torn tail: %w", err)
		}
	}
	if tail.OpenTail {
		if _, err := f.Write([]byte("\n")); err != nil {
			return fmt.Errorf("persist: terminate open tail: %w", err)
		}
	}
	return nil
}

// SetSync toggles fsync after every append (default true for file-backed
// journals; benchmarks disable it).
func (j *Journal) SetSync(on bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.sync = on
}

// Append journals one command. For sync-enabled file journals the record
// is durable when Append returns; buffered journals require a Flush. A
// failed append leaves the journal's sequence counter unchanged, and for
// unbuffered file journals any partially written bytes are truncated
// away, so the caller can retry without leaving a gap or corrupting the
// file. When that self-repair is impossible (buffered journal, or the
// truncate itself failed) the journal refuses all further appends instead
// of concatenating onto damaged data.
func (j *Journal) Append(op string, args any) error {
	_, err := j.AppendSeq(op, args)
	return err
}

// AppendSeq is Append returning the sequence number the record received.
func (j *Journal) AppendSeq(op string, args any) (int, error) {
	return j.AppendRecord(op, 0, args)
}

// AppendRecord is AppendSeq with an explicit epoch reference (sharded
// journals tag data records with the control-log sequence number they
// were issued under; epoch 0 is omitted from the encoding).
func (j *Journal) AppendRecord(op string, epoch int, args any) (int, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.failed {
		return 0, fmt.Errorf("persist: journal failed: a previous append left it in an unknown state")
	}
	if j.lineEnc == nil {
		j.lineEnc = json.NewEncoder(&j.lineBuf)
		j.argsEnc = json.NewEncoder(&j.argsBuf)
	}
	j.argsBuf.Reset()
	if err := j.argsEnc.Encode(args); err != nil {
		return 0, fmt.Errorf("persist: marshal %s args: %w", op, err)
	}
	blob := j.argsBuf.Bytes()
	blob = blob[:len(blob)-1] // drop the encoder's trailing newline
	rec := Record{Seq: j.seq + 1, Epoch: epoch, Op: op, Args: blob}
	j.lineBuf.Reset()
	// Encode appends the newline record terminator itself.
	if err := j.lineEnc.Encode(rec); err != nil {
		return 0, fmt.Errorf("persist: marshal record: %w", err)
	}
	if n, err := j.w.Write(j.lineBuf.Bytes()); err != nil {
		// The sequence counter only advances on success: a failed write
		// must not leave a numbering gap for the next append. Roll back
		// any partial bytes so a retried append cannot concatenate onto
		// the fragment and corrupt the journal mid-file.
		switch {
		case j.file != nil && j.bw == nil:
			if terr := j.file.Truncate(j.size); terr != nil {
				j.failed = true
			}
		case j.bw != nil:
			// The bufio layer's state after a flush-through error is
			// unknowable; stop before damage spreads.
			j.failed = true
		case n > 0:
			// Plain writer with partial bytes emitted: unrepairable.
			j.failed = true
		}
		return 0, fmt.Errorf("persist: append: %w", err)
	}
	j.seq = rec.Seq
	j.size += int64(j.lineBuf.Len())
	if j.file != nil && j.sync {
		if err := j.file.Sync(); err != nil {
			return 0, fmt.Errorf("persist: fsync: %w", err)
		}
	}
	return rec.Seq, nil
}

// Pending is one not-yet-appended record for AppendMulti.
type Pending struct {
	// Op names the command.
	Op string
	// Epoch is the control-log reference (0 omitted on the wire).
	Epoch int
	// Args carries the command arguments (encoded at append time).
	Args any
}

// AppendMulti journals a batch of records under one lock acquisition and
// one write (plus, for sync-enabled journals, one fsync for the whole
// batch) — the throughput primitive behind SubmitBatch. Sequence numbers
// are assigned contiguously in slice order; the last one is returned. The
// append is all-or-nothing: an encoding failure before any byte is
// written leaves the journal untouched, and a failed write rolls back
// exactly like Append (truncate for unbuffered file journals, refuse-
// further-appends when self-repair is impossible).
func (j *Journal) AppendMulti(recs []Pending) (int, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.failed {
		return 0, fmt.Errorf("persist: journal failed: a previous append left it in an unknown state")
	}
	if len(recs) == 0 {
		return j.seq, nil
	}
	if j.lineEnc == nil {
		j.lineEnc = json.NewEncoder(&j.lineBuf)
		j.argsEnc = json.NewEncoder(&j.argsBuf)
	}
	j.lineBuf.Reset()
	for i, p := range recs {
		j.argsBuf.Reset()
		if err := j.argsEnc.Encode(p.Args); err != nil {
			return 0, fmt.Errorf("persist: marshal %s args: %w", p.Op, err)
		}
		blob := j.argsBuf.Bytes()
		blob = blob[:len(blob)-1] // drop the encoder's trailing newline
		rec := Record{Seq: j.seq + 1 + i, Epoch: p.Epoch, Op: p.Op, Args: blob}
		// Encode appends the newline record terminator itself; lines
		// accumulate in lineBuf so the batch lands in one write.
		if err := j.lineEnc.Encode(rec); err != nil {
			return 0, fmt.Errorf("persist: marshal record: %w", err)
		}
	}
	if n, err := j.w.Write(j.lineBuf.Bytes()); err != nil {
		switch {
		case j.file != nil && j.bw == nil:
			if terr := j.file.Truncate(j.size); terr != nil {
				j.failed = true
			}
		case j.bw != nil:
			j.failed = true
		case n > 0:
			j.failed = true
		}
		return 0, fmt.Errorf("persist: append batch: %w", err)
	}
	j.seq += len(recs)
	j.size += int64(j.lineBuf.Len())
	if j.file != nil && j.sync {
		if err := j.file.Sync(); err != nil {
			return 0, fmt.Errorf("persist: fsync: %w", err)
		}
	}
	return j.seq, nil
}

// Flush drains the user-space buffer of a buffered journal and fsyncs the
// backing file, making every previously appended record durable. On a
// sync-enabled journal it degenerates to a plain fsync.
func (j *Journal) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.bw != nil {
		if err := j.bw.Flush(); err != nil {
			return fmt.Errorf("persist: flush: %w", err)
		}
	}
	if j.file != nil {
		if err := j.file.Sync(); err != nil {
			return fmt.Errorf("persist: fsync: %w", err)
		}
	}
	return nil
}

// Seq returns the sequence number of the last appended record.
func (j *Journal) Seq() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Close flushes (if buffered) and closes a file-backed journal.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.bw != nil {
		if err := j.bw.Flush(); err != nil {
			return fmt.Errorf("persist: flush on close: %w", err)
		}
	}
	if j.file != nil {
		return j.file.Close()
	}
	return nil
}

// ReadJournal parses all records from a reader. A trailing partial line
// (torn write after a crash) is tolerated and discarded; corruption in the
// middle of the journal is an error. A compacted journal (first record's
// sequence number > 1) is accepted as long as it stays contiguous.
func ReadJournal(r io.Reader) ([]Record, error) {
	return readAll(r)
}

// LoadJournal reads all records of a journal file. A missing file yields
// an empty journal.
func LoadJournal(path string) ([]Record, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("persist: load journal: %w", err)
	}
	defer f.Close()
	return readAll(f)
}

// TailInfo describes the boundaries and physical integrity of a scanned
// journal: the first and last intact sequence numbers (0, 0 when empty or
// missing), how many leading bytes hold intact records (a torn or corrupt
// tail lies beyond ValidSize), and whether the final intact record lost
// its newline terminator.
type TailInfo struct {
	FirstSeq  int
	LastSeq   int
	ValidSize int64
	OpenTail  bool
}

// ResumeJournal opens a file journal whose scan result the caller already
// holds (from LoadJournalSuffix), skipping the re-read OpenJournal would
// perform and repairing the physical tail exactly like OpenJournal does.
// buffered selects the group-commit mode of OpenJournalBuffered.
func ResumeJournal(path string, tail TailInfo, buffered bool) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: open journal: %w", err)
	}
	if err := repairTail(f, tail); err != nil {
		f.Close()
		return nil, err
	}
	return newFileJournal(f, buffered, tail.LastSeq), nil
}

// LoadJournalSuffix scans the journal once and fully decodes only the
// records with Seq > afterSeq — the suffix a snapshot recovery replays.
// Records at or before afterSeq are verified for contiguity via a fast
// sequence-number probe but never materialized, so recovering a long
// journal from a recent snapshot does not pay for decoding its history.
// Torn trailing lines are tolerated exactly like ReadJournal; the
// returned TailInfo feeds ResumeJournal's tail repair.
func LoadJournalSuffix(path string, afterSeq int) ([]Record, TailInfo, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, TailInfo{}, nil
	}
	if err != nil {
		return nil, TailInfo{}, fmt.Errorf("persist: load journal: %w", err)
	}
	defer f.Close()
	return scanRecords(f, afterSeq)
}

// quickSeq extracts the sequence number from a journal line without a
// full decode. The encoder always emits {"seq":N,... first (fixed struct
// field order), so a miss only happens on hand-edited or torn lines —
// those fall back to the full decoder.
func quickSeq(line []byte) (int, bool) {
	const prefix = `{"seq":`
	if !bytes.HasPrefix(line, []byte(prefix)) {
		return 0, false
	}
	n, i, digits := 0, len(prefix), false
	for i < len(line) && line[i] >= '0' && line[i] <= '9' {
		n = n*10 + int(line[i]-'0')
		digits = true
		i++
	}
	if !digits || i >= len(line) || (line[i] != ',' && line[i] != '}') {
		return 0, false
	}
	return n, true
}

func readAll(r io.Reader) ([]Record, error) {
	recs, _, err := scanRecords(r, 0)
	return recs, err
}

// scanRecords is the shared journal scanner: it validates sequence
// contiguity for every line, materializes only records with Seq >
// afterSeq (the fast quickSeq probe skips decoding the rest), tolerates a
// torn or corrupt final line, and tracks the physical extent of the
// intact prefix for tail repair.
func scanRecords(r io.Reader, afterSeq int) ([]Record, TailInfo, error) {
	var (
		recs    []Record
		tail    TailInfo
		lineErr error // candidate torn-tail error, fatal if more data follows
		offset  int64 // bytes consumed including the current line
		advance int   // bytes the splitter consumed for the current token
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	sc.Split(func(data []byte, atEOF bool) (int, []byte, error) {
		adv, tok, err := bufio.ScanLines(data, atEOF)
		advance = adv
		return adv, tok, err
	})
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		terminated := advance > len(raw) // newline (or \r\n) was consumed
		offset += int64(advance)
		line := bytes.TrimSpace(raw)
		if len(line) == 0 {
			// A blank line extends the intact prefix only while no corrupt
			// line is pending: past a torn record, everything belongs to
			// the damage and must fall to the tail repair's truncation.
			if terminated && lineErr == nil {
				tail.ValidSize = offset
			}
			continue
		}
		if lineErr != nil {
			// A malformed line followed by more data is real corruption.
			return nil, TailInfo{}, lineErr
		}
		seq, quick := quickSeq(line)
		// An unterminated line is a torn-tail candidate: the sequence
		// probe alone cannot tell a complete record from a truncated one,
		// so it always takes the full decode.
		if !quick || !terminated || seq > afterSeq {
			var rec Record
			if err := json.Unmarshal(line, &rec); err != nil {
				// Possibly a torn final write; decide when we see whether
				// more lines follow.
				lineErr = fmt.Errorf("persist: corrupt record at line %d: %w", lineNo, err)
				continue
			}
			seq = rec.Seq
			if err := checkSeq(seq, tail.LastSeq, lineNo); err != nil {
				return nil, TailInfo{}, err
			}
			if seq > afterSeq {
				recs = append(recs, rec)
			}
		} else if err := checkSeq(seq, tail.LastSeq, lineNo); err != nil {
			return nil, TailInfo{}, err
		}
		if tail.FirstSeq == 0 {
			tail.FirstSeq = seq
		}
		tail.LastSeq = seq
		tail.ValidSize = offset
		tail.OpenTail = !terminated
	}
	if err := sc.Err(); err != nil {
		return nil, TailInfo{}, fmt.Errorf("persist: read journal: %w", err)
	}
	return recs, tail, nil
}

// checkSeq enforces contiguity relative to the previous record: a
// compacted journal starts past 1 but must not skip within itself.
func checkSeq(seq, last, lineNo int) error {
	if last > 0 {
		if want := last + 1; seq != want {
			return fmt.Errorf("persist: journal gap at line %d: seq %d, want %d", lineNo, seq, want)
		}
	} else if seq < 1 {
		return fmt.Errorf("persist: invalid seq %d at line %d", seq, lineNo)
	}
	return nil
}

// Applier replays one journaled command; the facade implements it.
type Applier func(op string, args json.RawMessage) error

// Replay feeds every record to the applier in order.
func Replay(recs []Record, apply Applier) error {
	for _, rec := range recs {
		if err := apply(rec.Op, rec.Args); err != nil {
			return fmt.Errorf("persist: replay record %d (%s): %w", rec.Seq, rec.Op, err)
		}
	}
	return nil
}
