package adept2

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"strconv"
	"time"

	"adept2/internal/obs"
)

// Observability: every System owns an internal/obs metric Set threaded
// through the submit paths, the durability pipeline, checkpoints,
// recovery, and the exception loop. Metrics are on by default (the hot
// path cost is a handful of atomic adds); WithMetricsDisabled selects
// obs.Disabled — the nil set — making the off path allocation-free.
// Replay and recovery never record live-path metrics: the Set is
// installed only after recovery completes, and replay bypasses Submit.

// opIndex enumerates the command registry for per-op metric arrays.
// Order matches the registry's init order; Resume is appended because it
// shares the "suspend" journal op but is its own command (and its own
// metric label).
const (
	opUser = iota
	opDeploy
	opEvolve
	opCreate
	opStart
	opFail
	opTimeout
	opRetry
	opComplete
	opAdHoc
	opSuspend
	opUndo
	opResume
	numOps
)

// opNames labels the op indexes (the Prometheus op label values).
var opNames = [numOps]string{
	"user", "deploy", "evolve", "create", "start", "fail", "timeout",
	"retry", "complete", "adhoc", "suspend", "undo", "resume",
}

// codeNames fixes the outcome-code label space: index 0 is success, the
// rest are the Code taxonomy.
var codeNames = []string{
	"ok",
	string(CodeInternal), string(CodeInvalid), string(CodeNotFound),
	string(CodeConflict), string(CodeDenied), string(CodeSuspended),
	string(CodeCompleted), string(CodeNotCompliant), string(CodeVersionSkew),
	string(CodeWedged), string(CodeUnrecoverable), string(CodeCanceled),
	string(CodeFailed), string(CodeTimeout),
}

var codeIndexes = func() map[Code]int {
	m := make(map[Code]int, len(codeNames))
	for i := 1; i < len(codeNames); i++ {
		m[Code(codeNames[i])] = i
	}
	return m
}()

// codeOf extracts the taxonomy code of a submit failure.
func codeOf(err error) Code {
	var e *Error
	if errors.As(err, &e) {
		return e.Code
	}
	return CodeInternal
}

// codeIndexOf maps a submit failure to its outcome-matrix column.
func codeIndexOf(err error) int {
	if i, ok := codeIndexes[codeOf(err)]; ok {
		return i
	}
	return 1 // internal
}

// WithMetricsDisabled switches the telemetry plane off (obs.Disabled):
// no counters, no histograms, no trace ring, no clock reads — the
// submit path pays one nil check. The operational surfaces
// (System.Metrics, the metrics server) still serve engine and health
// gauges, just no accumulated families.
func WithMetricsDisabled() Option {
	return func(c *config) { c.metricsOff = true }
}

// WithTraceSampling tunes the command-lifecycle trace ring: slots is
// its capacity, every traces one of every N submissions (1 = all).
// Defaults: 256 slots, 1/64.
func WithTraceSampling(slots, every int) Option {
	return func(c *config) { c.obsOpts = obs.Options{RingSlots: slots, SampleEvery: every} }
}

// WithMetricsServer serves the metrics plane over HTTP at addr
// (host:port; ":0" picks a free port — see MetricsAddr): /metrics is
// Prometheus text format, /metrics.json the typed snapshot as JSON,
// /healthz the health summary (503 while wedged). The server stops on
// Close. Only takes effect with Open; New has no error path to report a
// failed listen through.
func WithMetricsServer(addr string) Option {
	return func(c *config) { c.metricsAddr = addr }
}

// WithSweepInterval runs System.SweepDeadlines from an in-process timer
// goroutine every d, so serving deployments get deadline expiry, retry
// backoff lifting, and policy re-runs without wiring their own ticker.
// The sweep time comes from the system clock (WithClock), the sweep-lag
// gauge tracks each tick's due-to-done gap, and Close shuts the timer
// down cleanly. Sweep errors are absorbed (the next Health/Metrics poll
// surfaces wedges); d <= 0 disables the timer.
func WithSweepInterval(d time.Duration) Option {
	return func(c *config) { c.sweepEvery = d }
}

// newMetricsSet builds the system's metric Set (nil when disabled).
func newMetricsSet(c *config, shards int) *obs.Set {
	if c.metricsOff {
		return obs.Disabled
	}
	return obs.New(opNames[:], codeNames, shards, c.obsOpts)
}

// recordRecovery files the one-time recovery family, after the fact —
// recovery itself ran before the Set existed.
func recordRecovery(m *obs.Set, info *RecoveryInfo, dur time.Duration) {
	if m == nil || info == nil {
		return
	}
	m.Recovery.Count.Inc()
	m.Recovery.Nanos.Add(dur.Nanoseconds())
	m.Recovery.Replayed.Add(int64(info.Replayed))
	m.Recovery.Fallbacks.Add(int64(len(info.Fallbacks)))
	if info.FullReplay {
		m.Recovery.FullReplays.Inc()
	}
}

// Metrics returns the typed point-in-time snapshot of the telemetry
// plane: per-op outcome and latency families, per-shard journal state,
// committer/checkpoint/recovery/exception families, engine gauges, the
// HealthInfo fold-in, and the sampled trace spans. Safe to poll; with
// WithMetricsDisabled only the instantaneous gauges are populated.
func (s *System) Metrics() *obs.Snapshot {
	snap := s.met.Snapshot()
	if s.met != nil {
		snap.Exception.Failures = s.met.OpOK(opFail)
		snap.Exception.Timeouts = s.met.OpOK(opTimeout)
		snap.Exception.Retries = s.met.OpOK(opRetry)
	}

	// Shard live view: head sequence, group-commit backlog, wedge state.
	shards := 1
	if s.wal != nil {
		shards = s.wal.Shards()
	}
	if len(snap.Shards) != shards {
		snap.Shards = make([]obs.ShardSnapshot, shards)
		for k := range snap.Shards {
			snap.Shards[k].Shard = k
		}
	}
	switch {
	case s.wal != nil:
		seqs := s.wal.Seqs()
		depths := s.wal.Depths()
		for _, k := range s.wal.WedgedShards() {
			snap.Shards[k].Wedged = true
		}
		for k := range snap.Shards {
			snap.Shards[k].Seq = seqs[k]
			snap.Shards[k].Depth = depths[k]
		}
	case s.journal != nil:
		seq := s.journal.Seq()
		snap.Shards[0].Seq = seq
		if s.committer != nil {
			snap.Shards[0].Depth = seq - s.committer.Flushed()
			snap.Shards[0].Wedged = s.committer.Err() != nil
		}
	}

	// Snapshot-store byte counters (accumulated passively, surfaced here).
	if s.ckpt != nil && s.ckpt.store != nil {
		snap.Checkpoint.BytesWritten += s.ckpt.store.BytesWritten()
		snap.Checkpoint.BytesRead += s.ckpt.store.BytesRead()
	}
	for _, st := range s.stores {
		snap.Checkpoint.BytesWritten += st.BytesWritten()
		snap.Checkpoint.BytesRead += st.BytesRead()
	}

	snap.Engine = obs.EngineSnapshot{
		Instances:      s.eng.NumInstances(),
		WorklistDepth:  s.eng.Worklist().Len(),
		OpenExceptions: len(s.eng.OpenExceptions()),
	}

	hi := s.HealthInfo()
	snap.Health = obs.HealthSnapshot{
		Wedged:       hi.Wedged != nil,
		WedgedShards: hi.WedgedShards,
		CleanupErrs:  hi.CleanupErrs,
		FlushRetries: hi.FlushRetries,
	}
	if hi.CheckpointErr != nil {
		snap.Health.CheckpointErr = hi.CheckpointErr.Error()
	}
	return snap
}

// ObsSet exposes the live metric registry for in-module wiring (the
// networked command plane records its request/stream families into the
// same Set System.Metrics snapshots). nil when metrics are disabled —
// every obs recording method is nil-safe, so callers pass it through
// unguarded. External consumers should use Metrics instead.
func (s *System) ObsSet() *obs.Set { return s.met }

// MetricsAddr returns the metrics server's bound address ("" without
// WithMetricsServer) — the way to find the port after ":0".
func (s *System) MetricsAddr() string {
	if s.obsLis == nil {
		return ""
	}
	return s.obsLis.Addr().String()
}

// startObs brings up the per-system observability machinery that runs
// goroutines: the sweep timer and the metrics HTTP server. Called at
// the end of Open (after recovery) and torn down first in Close.
func (s *System) startObs(c *config) error {
	if c.sweepEvery > 0 {
		s.startSweeper(c.sweepEvery)
	}
	if c.metricsAddr != "" {
		if err := s.startMetricsServer(c.metricsAddr); err != nil {
			return err
		}
	}
	return nil
}

// stopObs shuts the sweep timer and metrics server down. It runs before
// the durability teardown in Close so no sweep submits into a closing
// committer and no scrape observes a half-closed system.
func (s *System) stopObs() {
	if s.sweepStop != nil {
		close(s.sweepStop)
		<-s.sweepDone
		s.sweepStop = nil
	}
	if s.obsSrv != nil {
		s.obsSrv.Close()
		s.obsSrv = nil
		s.obsLis = nil
	}
}

func (s *System) startSweeper(every time.Duration) {
	s.sweepStop = make(chan struct{})
	s.sweepDone = make(chan struct{})
	go func() {
		defer close(s.sweepDone)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-s.sweepStop:
				return
			case due := <-t.C:
				// Sweep at the system clock (deterministic soaks inject
				// one); the lag gauge uses the wall clock the ticker runs
				// on: schedule drift + sweep duration.
				_, _ = s.SweepDeadlines(context.Background(), time.Unix(0, s.now()))
				if m := s.met; m != nil {
					m.Exception.SweepLagNanos.Set(time.Since(due).Nanoseconds())
				}
			}
		}
	}()
}

func (s *System) startMetricsServer(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return wrapErr("metrics", "", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = obs.WritePrometheus(w, s.Metrics())
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.Metrics())
	})
	mux.HandleFunc("/mine.json", func(w http.ResponseWriter, r *http.Request) {
		opts := MineOptions{}
		if v := r.URL.Query().Get("variants"); v != "" {
			if n, err := strconv.Atoi(v); err == nil {
				opts.MaxVariants = n
			}
		}
		rep, err := s.Mine(r.Context(), opts)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
	})
	mux.HandleFunc("/trace.json", func(w http.ResponseWriter, r *http.Request) {
		var after uint64
		if v := r.URL.Query().Get("after"); v != "" {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				http.Error(w, "bad after cursor: "+err.Error(), http.StatusBadRequest)
				return
			}
			after = n
		}
		var ring *obs.TraceRing
		if s.met != nil {
			ring = s.met.Ring
		}
		spans, next := ring.Export(after)
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(obs.TraceExport{Next: next, Spans: spans})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		status := map[string]any{"healthy": true}
		if err := s.healthErr(); err != nil {
			status["healthy"] = false
			status["error"] = err.Error()
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(status)
	})
	s.obsLis = lis
	s.obsSrv = &http.Server{Handler: mux}
	go func() { _ = s.obsSrv.Serve(lis) }()
	return nil
}
