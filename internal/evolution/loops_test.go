package evolution_test

import (
	"testing"

	"adept2/internal/change"
	"adept2/internal/engine"
	"adept2/internal/evolution"
	"adept2/internal/model"
	"adept2/internal/sim"
	"adept2/internal/state"
)

// loopEngine deploys the loop process and creates an instance driven
// through the given number of iterations.
func loopEngine(t *testing.T, iterations int) (*engine.Engine, *engine.Instance, string) {
	t.Helper()
	e := engine.New(sim.Org())
	if err := e.Deploy(sim.LoopProcess()); err != nil {
		t.Fatal(err)
	}
	inst, err := e.CreateInstance("loopy", 0)
	if err != nil {
		t.Fatal(err)
	}
	var loopEnd string
	for _, n := range sim.LoopProcess().Nodes() {
		if n.Type == model.NodeLoopEnd {
			loopEnd = n.ID
		}
	}
	if iterations >= 0 {
		if err := sim.DriveLoopIterations(e, inst, iterations); err != nil {
			t.Fatal(err)
		}
	}
	return e, inst, loopEnd
}

// TestLoopInstanceMigratesAfterIterations: the paper's criterion "works
// correctly in connection with loop backs" — an instance that already
// iterated several times migrates, because only the *last* iteration
// counts (loop-reduced history).
func TestLoopInstanceMigratesAfterIterations(t *testing.T) {
	for _, mode := range []evolution.CheckMode{evolution.FastCheck, evolution.ReplayCheck} {
		t.Run(mode.String(), func(t *testing.T) {
			e, inst, _ := loopEngine(t, 3)
			// The change inserts review before finalize; finalize has not
			// started, so the instance is compliant despite 40 history
			// events.
			mgr := evolution.NewManager(e)
			report, err := mgr.Evolve("loopy", sim.LoopProcessTypeChange(), evolution.Options{Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			if got := resultOf(report, inst.ID()); got.Outcome != evolution.Migrated {
				t.Fatalf("outcome = %s (%s)", got.Outcome, got.Detail)
			}
			if inst.Version() != 2 {
				t.Fatal("version")
			}
			// finalize still waits behind the new review activity.
			if inst.NodeState("review") != state.Activated {
				t.Fatalf("review = %s", inst.NodeState("review"))
			}
			if inst.NodeState("finalize") != state.NotActivated {
				t.Fatalf("finalize = %s", inst.NodeState("finalize"))
			}
			if err := e.CompleteActivity(inst.ID(), "review", "ann", nil); err != nil {
				t.Fatal(err)
			}
			if err := e.CompleteActivity(inst.ID(), "finalize", "ann", nil); err != nil {
				t.Fatal(err)
			}
			if !inst.Done() {
				t.Fatal("instance should complete on V2")
			}
		})
	}
}

// TestLoopBodyChangeMidIteration: inserting into the loop body while the
// current iteration already passed the insertion point is a state
// conflict under the fast check AND the replay check (the logical history
// of the current iteration contains the successor).
func TestLoopBodyChangeMidIteration(t *testing.T) {
	ops := []change.Operation{&change.SerialInsert{
		Node: &model.Node{ID: "audit", Type: model.NodeActivity, Role: "worker", Template: "audit"},
		Pred: "step1",
		Succ: "step2",
	}}
	for _, mode := range []evolution.CheckMode{evolution.FastCheck, evolution.ReplayCheck} {
		t.Run(mode.String(), func(t *testing.T) {
			// Instance inside iteration 2, step2 already completed.
			e, inst, _ := loopEngine(t, -1)
			for _, n := range []string{"step1", "step2"} {
				if err := e.CompleteActivity(inst.ID(), n, "ann", nil); err != nil {
					t.Fatal(err)
				}
			}
			mgr := evolution.NewManager(e)
			report, err := mgr.Evolve("loopy", ops, evolution.Options{Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			if got := resultOf(report, inst.ID()); got.Outcome != evolution.StateConflict {
				t.Fatalf("mid-iteration insert = %s (%s), want state conflict", got.Outcome, got.Detail)
			}
		})
	}
}

// TestLoopBodyChangeAfterLoopBack: the same insertion is compliant right
// after a loop back, because the new iteration has not reached the
// insertion point — the loop-purged history at work.
func TestLoopBodyChangeAfterLoopBack(t *testing.T) {
	ops := []change.Operation{&change.SerialInsert{
		Node: &model.Node{ID: "audit", Type: model.NodeActivity, Role: "worker", Template: "audit"},
		Pred: "step1",
		Succ: "step2",
	}}
	for _, mode := range []evolution.CheckMode{evolution.FastCheck, evolution.ReplayCheck} {
		t.Run(mode.String(), func(t *testing.T) {
			e, inst, loopEnd := loopEngine(t, -1)
			// Complete a full iteration and loop back.
			for _, n := range []string{"step1", "step2", "step3"} {
				if err := e.CompleteActivity(inst.ID(), n, "ann", nil); err != nil {
					t.Fatal(err)
				}
			}
			if err := e.CompleteActivity(inst.ID(), loopEnd, "", nil, engine.WithLoopAgain(true)); err != nil {
				t.Fatal(err)
			}
			// New iteration: step1 activated, nothing in it started yet.
			mgr := evolution.NewManager(e)
			report, err := mgr.Evolve("loopy", ops, evolution.Options{Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			if got := resultOf(report, inst.ID()); got.Outcome != evolution.Migrated {
				t.Fatalf("post-loop-back insert = %s (%s), want migrated", got.Outcome, got.Detail)
			}
			// The new activity participates in the fresh iteration.
			if err := e.CompleteActivity(inst.ID(), "step1", "ann", nil); err != nil {
				t.Fatal(err)
			}
			if inst.NodeState("audit") != state.Activated {
				t.Fatalf("audit = %s", inst.NodeState("audit"))
			}
		})
	}
}

// TestLoopMigrationPreservesIterationBehaviour: a migrated loop instance
// keeps iterating correctly, including the inserted activity in later
// iterations.
func TestLoopMigrationPreservesIterationBehaviour(t *testing.T) {
	// One completed iteration, loop back taken: the instance sits at the
	// start of iteration 2 when the type change arrives.
	e, inst, loopEnd := loopEngine(t, -1)
	for _, n := range []string{"step1", "step2", "step3"} {
		if err := e.CompleteActivity(inst.ID(), n, "ann", nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.CompleteActivity(inst.ID(), loopEnd, "", nil, engine.WithLoopAgain(true)); err != nil {
		t.Fatal(err)
	}
	mgr := evolution.NewManager(e)
	report, err := mgr.Evolve("loopy", sim.LoopProcessTypeChange(), evolution.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := resultOf(report, inst.ID()); got.Outcome != evolution.Migrated {
		t.Fatalf("outcome = %s (%s)", got.Outcome, got.Detail)
	}
	// Finish iteration 2 on V2, exit the loop, and pass review.
	for _, n := range []string{"step1", "step2", "step3"} {
		if err := e.CompleteActivity(inst.ID(), n, "ann", nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.CompleteActivity(inst.ID(), loopEnd, "", nil, engine.WithLoopAgain(false)); err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"review", "finalize"} {
		if err := e.CompleteActivity(inst.ID(), n, "ann", nil); err != nil {
			t.Fatal(err)
		}
	}
	if !inst.Done() {
		t.Fatal("migrated loop instance should complete")
	}
}
