package rollback_test

import (
	"strings"
	"testing"

	"adept2/internal/change"
	"adept2/internal/engine"
	"adept2/internal/model"
	"adept2/internal/rollback"
	"adept2/internal/sim"
	"adept2/internal/state"
)

func newInstance(t *testing.T) (*engine.Engine, *engine.Instance) {
	t.Helper()
	e := engine.New(sim.Org())
	if err := e.Deploy(sim.OnlineOrder()); err != nil {
		t.Fatal(err)
	}
	inst, err := e.CreateInstance("online_order", 0)
	if err != nil {
		t.Fatal(err)
	}
	return e, inst
}

func TestUndoLastRemovesBias(t *testing.T) {
	_, inst := newInstance(t)
	if err := change.ApplyAdHoc(inst, sim.OnlineOrderBiasI2()...); err != nil {
		t.Fatal(err)
	}
	if len(inst.BiasOps()) != 2 {
		t.Fatal("setup")
	}
	// Undo the sync edge (the last op).
	if err := rollback.UndoLast(inst); err != nil {
		t.Fatalf("undo: %v", err)
	}
	if len(inst.BiasOps()) != 1 {
		t.Fatalf("bias ops = %d", len(inst.BiasOps()))
	}
	v := inst.View()
	if v.HasEdge(model.EdgeKey{From: "confirm_order", To: "compose_order", Type: model.EdgeSync}) {
		t.Fatal("sync edge should be gone")
	}
	if _, ok := v.Node("send_brochure"); !ok {
		t.Fatal("first op must survive")
	}
	// Undo the remaining insert.
	if err := rollback.UndoLast(inst); err != nil {
		t.Fatalf("second undo: %v", err)
	}
	if inst.Biased() {
		t.Fatal("instance should be unbiased again")
	}
	if _, ok := inst.View().Node("send_brochure"); ok {
		t.Fatal("inserted activity should be gone")
	}
	// Third undo fails: nothing left.
	if err := rollback.UndoLast(inst); err == nil {
		t.Fatal("undo without bias must fail")
	}
}

func TestUndoAdaptsState(t *testing.T) {
	e, inst := newInstance(t)
	if err := e.CompleteActivity(inst.ID(), "get_order", "ann", map[string]any{"out": "o"}); err != nil {
		t.Fatal(err)
	}
	op := &change.SerialInsert{
		Node: &model.Node{ID: "extra", Type: model.NodeActivity, Role: "clerk", Template: "extra"},
		Pred: "collect_data",
		Succ: "confirm_order",
	}
	if err := change.ApplyAdHoc(inst, op); err != nil {
		t.Fatal(err)
	}
	if err := e.CompleteActivity(inst.ID(), "collect_data", "ann", nil); err != nil {
		t.Fatal(err)
	}
	// extra is activated now; undoing re-activates confirm_order instead.
	if inst.NodeState("extra") != state.Activated {
		t.Fatal("setup: extra should be activated")
	}
	if err := rollback.UndoLast(inst); err != nil {
		t.Fatalf("undo: %v", err)
	}
	if inst.NodeState("confirm_order") != state.Activated {
		t.Fatalf("confirm_order should be activated after undo, is %s", inst.NodeState("confirm_order"))
	}
	// The worklist follows the adaptation.
	if _, ok := e.Worklist().ItemFor(inst.ID(), "extra"); ok {
		t.Fatal("work item of removed activity must be withdrawn")
	}
	if _, ok := e.Worklist().ItemFor(inst.ID(), "confirm_order"); !ok {
		t.Fatal("work item of re-activated activity must exist")
	}
}

func TestUndoRejectedWhenWorkStarted(t *testing.T) {
	e, inst := newInstance(t)
	if err := e.CompleteActivity(inst.ID(), "get_order", "ann", map[string]any{"out": "o"}); err != nil {
		t.Fatal(err)
	}
	op := &change.SerialInsert{
		Node: &model.Node{ID: "extra", Type: model.NodeActivity, Role: "clerk", Template: "extra"},
		Pred: "collect_data",
		Succ: "confirm_order",
	}
	if err := change.ApplyAdHoc(inst, op); err != nil {
		t.Fatal(err)
	}
	if err := e.CompleteActivity(inst.ID(), "collect_data", "ann", nil); err != nil {
		t.Fatal(err)
	}
	if err := e.CompleteActivity(inst.ID(), "extra", "ann", nil); err != nil {
		t.Fatal(err)
	}
	err := rollback.UndoLast(inst)
	if err == nil || !strings.Contains(err.Error(), "progressed") {
		t.Fatalf("undo of executed insert must fail with a state conflict, got %v", err)
	}
	// The bias is untouched after the failed undo.
	if len(inst.BiasOps()) != 1 {
		t.Fatal("failed undo must not modify the bias")
	}
}

func TestUndoAll(t *testing.T) {
	_, inst := newInstance(t)
	if err := change.ApplyAdHoc(inst, sim.OnlineOrderBiasI2()...); err != nil {
		t.Fatal(err)
	}
	if err := change.ApplyAdHoc(inst, &change.InsertSyncEdge{From: "collect_data", To: "compose_order"}); err != nil {
		t.Fatal(err)
	}
	if len(inst.BiasOps()) != 3 {
		t.Fatal("setup")
	}
	if err := rollback.UndoAll(inst); err != nil {
		t.Fatalf("undo all: %v", err)
	}
	if inst.Biased() {
		t.Fatal("instance should be unbiased")
	}
	base := sim.OnlineOrder()
	if !model.Equal(base, inst.View()) {
		t.Fatal("view should equal the plain schema again")
	}
}

func TestUndoOnFinishedInstanceFails(t *testing.T) {
	e, inst := newInstance(t)
	if err := change.ApplyAdHoc(inst, &change.InsertSyncEdge{From: "collect_data", To: "compose_order"}); err != nil {
		t.Fatal(err)
	}
	for _, step := range []struct {
		node, user string
		out        map[string]any
	}{
		{"get_order", "ann", map[string]any{"out": "o"}},
		{"collect_data", "ann", nil},
		{"confirm_order", "ann", nil},
		{"compose_order", "bob", nil},
		{"pack_goods", "bob", nil},
		{"deliver_goods", "bob", nil},
	} {
		if err := e.CompleteActivity(inst.ID(), step.node, step.user, step.out); err != nil {
			t.Fatal(err)
		}
	}
	if err := rollback.UndoLast(inst); err == nil {
		t.Fatal("undo on finished instance must fail")
	}
}

func TestUndoAcrossStorageStrategies(t *testing.T) {
	for _, strat := range []struct {
		name string
		set  func(*engine.Engine)
	}{
		{"hybrid", func(*engine.Engine) {}},
		{"full-copy", func(e *engine.Engine) { e.SetStorageStrategy(1) }},
		{"on-the-fly", func(e *engine.Engine) { e.SetStorageStrategy(2) }},
	} {
		t.Run(strat.name, func(t *testing.T) {
			e := engine.New(sim.Org())
			strat.set(e)
			if err := e.Deploy(sim.OnlineOrder()); err != nil {
				t.Fatal(err)
			}
			inst, err := e.CreateInstance("online_order", 0)
			if err != nil {
				t.Fatal(err)
			}
			if err := change.ApplyAdHoc(inst, sim.OnlineOrderBiasI2()...); err != nil {
				t.Fatal(err)
			}
			if err := rollback.UndoAll(inst); err != nil {
				t.Fatal(err)
			}
			if !model.Equal(sim.OnlineOrder(), inst.View()) {
				t.Fatal("undo did not restore the plain schema")
			}
		})
	}
}
