package model

// NodeIdx is the dense interned index of a node within one Topology. The
// index of a node is its position in SchemaView.NodeIDs order, so indices
// are contiguous in [0, NumNodes()) and array lookups replace string-keyed
// map traffic in every per-event hot loop (marking evaluation, compliance
// replay, state adaptation).
//
// A NodeIdx is only meaningful relative to the Topology that assigned it.
// Structural mutations produce a new Topology with a fresh assignment —
// consumers that hold state indexed by NodeIdx (internal/state.Marking)
// must remap when the topology pointer changes.
type NodeIdx int32

// InvalidNode is the sentinel for "not part of the indexed view".
const InvalidNode NodeIdx = -1

// EdgeIdx is the dense interned index of an edge within one Topology: the
// edge's position in SchemaView.Edges order. Like NodeIdx it is valid only
// for the Topology that assigned it.
type EdgeIdx int32

// NodeTopology is the precomputed adjacency record of one node: its
// incident edges split by edge type, the node itself, and the node's
// position in the view's enumeration order. The marking evaluator
// (internal/state) consults these slices in its inner loop instead of
// filtering InEdges/OutEdges on every visit, which removes all per-call
// allocations from the hot path.
//
// The *Edge slices carry the full edge records (selection codes, endpoint
// IDs); the parallel EdgeIdx slices carry the same edges as dense indices
// into the topology's edge enumeration, aligned element-for-element, so
// int-indexed consumers never touch an edge-key map.
//
// The slices are owned by the Topology and must not be mutated.
type NodeTopology struct {
	// Index is the node's position in SchemaView.NodeIDs order — the
	// node's interned NodeIdx as a plain int.
	Index int
	// Node is the node record itself.
	Node *Node

	// InControl / OutControl are the incoming/outgoing control edges.
	InControl  []*Edge
	OutControl []*Edge
	// InSync / OutSync are the incoming/outgoing sync edges.
	InSync  []*Edge
	OutSync []*Edge
	// InLoop / OutLoop are the incoming/outgoing loop back edges.
	InLoop  []*Edge
	OutLoop []*Edge

	// Interned adjacency, aligned with the slices above: XxxIdx[i] is the
	// EdgeIdx of Xxx[i].
	InControlIdx  []EdgeIdx
	OutControlIdx []EdgeIdx
	InSyncIdx     []EdgeIdx
	OutSyncIdx    []EdgeIdx
	OutLoopIdx    []EdgeIdx
}

// Topology is the precomputed topology index of a schema view: per-node
// typed adjacency plus derived node lists the engine's hot paths scan
// (auto-executable nodes for the execution cascade, manual activities for
// worklist reconciliation). It doubles as the view's node/edge interner:
// every node receives a dense NodeIdx and every edge a dense EdgeIdx, and
// the int-indexed accessors (At, EdgeTarget, EdgeStateAt consumers) let
// the replay stack run map-free between package boundaries.
//
// A Topology is an immutable snapshot of the view it was built from. Views
// cache it (see Schema.Topology and the overlay refresh path in
// internal/storage) and invalidate the cache on every structural mutation,
// so holding a *Topology across a mutation observes stale data — re-fetch
// it from the view instead. Indices assigned by different Topology values
// are unrelated; remap through the string IDs.
type Topology struct {
	byID map[string]NodeIdx
	recs []NodeTopology // dense by NodeIdx
	ids  []string       // dense by NodeIdx (NodeIDs order)

	edges   []*Edge             // dense by EdgeIdx (Edges order)
	edgeIdx map[EdgeKey]EdgeIdx // boundary interner for keyed access
	edgeTo  []NodeIdx           // dense by EdgeIdx: interned target node

	auto    []string // CanAutoExecute node IDs in view order
	autoIdx []NodeIdx
	manual  []string // manual (user-worked) activity IDs in view order

	start NodeIdx
	end   NodeIdx
}

// BuildTopology computes the topology index of a view. Callers should
// prefer SchemaView.Topology, which returns the view's cached index.
func BuildTopology(v SchemaView) *Topology {
	ids := v.NodeIDs()
	t := &Topology{
		byID:  make(map[string]NodeIdx, len(ids)),
		start: InvalidNode,
		end:   InvalidNode,
	}
	t.recs = make([]NodeTopology, 0, len(ids))
	t.ids = make([]string, 0, len(ids))
	for _, id := range ids {
		n, ok := v.Node(id)
		if !ok {
			continue
		}
		idx := NodeIdx(len(t.recs))
		t.byID[id] = idx
		t.ids = append(t.ids, id)
		t.recs = append(t.recs, NodeTopology{Index: int(idx), Node: n})
		if n.CanAutoExecute() {
			t.auto = append(t.auto, id)
			t.autoIdx = append(t.autoIdx, idx)
		}
		if n.Type == NodeActivity && !n.Auto {
			t.manual = append(t.manual, id)
		}
		switch n.Type {
		case NodeStart:
			t.start = idx
		case NodeEnd:
			t.end = idx
		}
	}

	all := v.Edges()
	t.edges = make([]*Edge, 0, len(all))
	t.edgeIdx = make(map[EdgeKey]EdgeIdx, len(all))
	t.edgeTo = make([]NodeIdx, 0, len(all))
	rec := func(id string) *NodeTopology {
		if i, ok := t.byID[id]; ok {
			return &t.recs[i]
		}
		return nil
	}
	for _, e := range all {
		ei := EdgeIdx(len(t.edges))
		t.edges = append(t.edges, e)
		t.edgeIdx[e.Key()] = ei
		to := InvalidNode
		if i, ok := t.byID[e.To]; ok {
			to = i
		}
		t.edgeTo = append(t.edgeTo, to)
		from, target := rec(e.From), rec(e.To)
		switch e.Type {
		case EdgeControl:
			if from != nil {
				from.OutControl = append(from.OutControl, e)
				from.OutControlIdx = append(from.OutControlIdx, ei)
			}
			if target != nil {
				target.InControl = append(target.InControl, e)
				target.InControlIdx = append(target.InControlIdx, ei)
			}
		case EdgeSync:
			if from != nil {
				from.OutSync = append(from.OutSync, e)
				from.OutSyncIdx = append(from.OutSyncIdx, ei)
			}
			if target != nil {
				target.InSync = append(target.InSync, e)
				target.InSyncIdx = append(target.InSyncIdx, ei)
			}
		case EdgeLoop:
			if from != nil {
				from.OutLoop = append(from.OutLoop, e)
				from.OutLoopIdx = append(from.OutLoopIdx, ei)
			}
			if target != nil {
				target.InLoop = append(target.InLoop, e)
			}
		}
	}
	return t
}

// Of returns the adjacency record of the node, or nil if the node is not
// part of the indexed view.
func (t *Topology) Of(id string) *NodeTopology {
	if i, ok := t.byID[id]; ok {
		return &t.recs[i]
	}
	return nil
}

// Idx interns a node ID to its dense index.
func (t *Topology) Idx(id string) (NodeIdx, bool) {
	i, ok := t.byID[id]
	return i, ok
}

// ID returns the node ID of a dense index. The index must be valid for
// this topology.
func (t *Topology) ID(i NodeIdx) string { return t.ids[i] }

// At returns the adjacency record of a dense index. The index must be
// valid for this topology.
func (t *Topology) At(i NodeIdx) *NodeTopology { return &t.recs[i] }

// NumNodes returns the number of indexed nodes.
func (t *Topology) NumNodes() int { return len(t.recs) }

// NumEdges returns the number of indexed edges.
func (t *Topology) NumEdges() int { return len(t.edges) }

// EdgeIdxOf interns an edge key to its dense index.
func (t *Topology) EdgeIdxOf(k EdgeKey) (EdgeIdx, bool) {
	i, ok := t.edgeIdx[k]
	return i, ok
}

// EdgeAt returns the edge record of a dense edge index.
func (t *Topology) EdgeAt(i EdgeIdx) *Edge { return t.edges[i] }

// EdgeTarget returns the interned target node of a dense edge index
// (InvalidNode if the target is not part of the view).
func (t *Topology) EdgeTarget(i EdgeIdx) NodeIdx { return t.edgeTo[i] }

// StartIdx returns the interned start node (InvalidNode if absent).
func (t *Topology) StartIdx() NodeIdx { return t.start }

// EndIdx returns the interned end node (InvalidNode if absent).
func (t *Topology) EndIdx() NodeIdx { return t.end }

// AutoExecutable returns the IDs of all nodes the engine may start and
// complete without user interaction (Node.CanAutoExecute), in view order.
// The execution cascade scans this list instead of all nodes.
func (t *Topology) AutoExecutable() []string { return t.auto }

// AutoExecutableIdx returns the interned indices of AutoExecutable, in
// view order.
func (t *Topology) AutoExecutableIdx() []NodeIdx { return t.autoIdx }

// ManualActivities returns the IDs of all user-worked activity nodes in
// view order; worklist reconciliation scans this list instead of all
// nodes.
func (t *Topology) ManualActivities() []string { return t.manual }
