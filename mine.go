package adept2

import (
	"context"

	"adept2/internal/durable/sharded"
	"adept2/internal/engine"
	"adept2/internal/history"
	"adept2/internal/mining"
)

// MineOptions tunes a System.Mine scan.
type MineOptions struct {
	// BatchSize is how many instances each read-barrier acquisition
	// covers (default 256). Smaller batches yield the barrier to
	// checkpoints more often; the scan's peak allocation is O(BatchSize
	// + the report's capped tables), never O(population).
	BatchSize int
	// MaxVariants caps the report's distinct-variant table (default
	// 512); MaxEdges the traversal-edge table (default 4096); TopPaths
	// the hot-path extraction (default 5).
	MaxVariants int
	MaxEdges    int
	TopPaths    int
}

// Mine streams the live population through the process-mining fold
// (internal/mining) and returns the report: variant frequencies, hot
// paths, per-node traversal/exception/duration aggregates, and drift
// against the latest deployed schema versions.
//
// The scan runs under the snapshot read barrier in shard-aligned
// batches: each InstancesPage walk holds snapMu shared (like any data
// command — writers are not blocked), folds every instance of the
// batch inside that instance's own lock via engine.MineHistory with a
// single shared reduction buffer, then releases the barrier before
// paging on. Instances created while the scan is in flight may or may
// not be included (cursor semantics); each included instance's history
// is internally consistent because the fold runs under its lock.
func (s *System) Mine(ctx context.Context, opts MineOptions) (*mining.Report, error) {
	if opts.BatchSize <= 0 {
		opts.BatchSize = 256
	}
	m := mining.NewMiner(mining.Options{
		MaxVariants: opts.MaxVariants,
		MaxEdges:    opts.MaxEdges,
		TopPaths:    opts.TopPaths,
	})
	for _, t := range s.eng.Types() {
		v := s.eng.LatestVersion(t)
		if sch, ok := s.eng.Schema(t, v); ok {
			m.Deployed(t, v, sch.NodeIDs())
		}
	}

	shards := 1
	if s.wal != nil {
		shards = s.wal.Shards()
	}
	// One visitor closure and one reduction buffer serve the whole scan,
	// so the steady-state fold allocates nothing per instance.
	var buf []*history.Event
	var shard int
	visit := func(v engine.MineView) { m.Observe(v, shard) }
	for cursor := ""; ; {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s.snapMu.RLock()
		insts, next := s.eng.InstancesPage(cursor, opts.BatchSize)
		for _, inst := range insts {
			shard = sharded.ShardOf(inst.ID(), shards)
			buf = inst.MineHistory(buf, visit)
		}
		s.snapMu.RUnlock()
		if next == "" {
			break
		}
		cursor = next
	}
	return m.Report(), nil
}
