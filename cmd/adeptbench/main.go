// Command adeptbench regenerates the evaluation artifacts of the ADEPT2
// paper (ICDE 2005) as tables or CSV: the per-figure experiments indexed
// in DESIGN.md / EXPERIMENTS.md.
//
//	adeptbench -experiment fig1      # compliance: fast conditions vs replay
//	adeptbench -experiment fig2      # storage: hybrid vs full-copy vs on-the-fly
//	adeptbench -experiment fig3      # migration of instance populations
//	adeptbench -experiment verify    # buildtime verification cost (E4)
//	adeptbench -experiment adhoc     # ad-hoc change latency (E5)
//	adeptbench -experiment adapt     # state adaptation ablation (E6)
//	adeptbench -experiment concurrent# execution under migration load (E8)
//	adeptbench -experiment all
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"adept2/internal/change"
	"adept2/internal/compliance"
	"adept2/internal/engine"
	"adept2/internal/evolution"
	"adept2/internal/graph"
	"adept2/internal/history"
	"adept2/internal/model"
	"adept2/internal/monitor"
	"adept2/internal/sim"
	"adept2/internal/storage"
	"adept2/internal/verify"
)

var (
	experiment = flag.String("experiment", "all", "fig1|fig2|fig3|verify|adhoc|adapt|concurrent|all")
	csvOut     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	seed       = flag.Int64("seed", 1, "workload seed")
	scale      = flag.Int("scale", 1, "multiplies population sizes")
)

func main() {
	flag.Parse()
	run := map[string]func(){
		"fig1":       fig1,
		"fig2":       fig2,
		"fig3":       fig3,
		"verify":     verifyCost,
		"adhoc":      adHocCost,
		"adapt":      adaptAblation,
		"concurrent": concurrentLoad,
	}
	if *experiment == "all" {
		for _, name := range []string{"fig1", "fig2", "fig3", "verify", "adhoc", "adapt", "concurrent"} {
			run[name]()
			fmt.Println()
		}
		return
	}
	fn, ok := run[*experiment]
	if !ok {
		log.Fatalf("unknown experiment %q", *experiment)
	}
	fn()
}

func emit(title string, headers []string, rows []monitor.Row) {
	if *csvOut {
		fmt.Printf("# %s\n", title)
		monitor.WriteCSV(os.Stdout, headers, rows)
		return
	}
	fmt.Printf("=== %s ===\n", title)
	monitor.WriteTable(os.Stdout, headers, rows)
}

func newEngine() *engine.Engine {
	e := engine.New(sim.Org())
	if err := e.Deploy(sim.OnlineOrder()); err != nil {
		log.Fatal(err)
	}
	return e
}

// fig1 measures the cost of deciding compliance with the per-operation
// fast conditions versus replaying the (loop-reduced) execution history,
// across history lengths — the efficiency claim behind Fig. 1.
func fig1() {
	e := engine.New(sim.Org())
	if err := e.Deploy(sim.LoopProcess()); err != nil {
		log.Fatal(err)
	}
	ops := sim.LoopProcessTypeChange()
	target := sim.LoopProcess()
	for _, op := range ops {
		if err := op.ApplyTo(target); err != nil {
			log.Fatal(err)
		}
	}
	targetInfo, err := graph.Analyze(target)
	if err != nil {
		log.Fatal(err)
	}
	baseInfo, err := graph.Analyze(sim.LoopProcess())
	if err != nil {
		log.Fatal(err)
	}

	var rows []monitor.Row
	for _, iters := range []int{1, 4, 16, 64, 256} {
		inst, err := e.CreateInstance("loopy", 0)
		if err != nil {
			log.Fatal(err)
		}
		if err := sim.DriveLoopIterations(e, inst, iters); err != nil {
			log.Fatal(err)
		}
		events := inst.HistoryEvents()
		reduced := history.Reduce(baseInfo, events)

		ctx := &change.Context{View: inst.View(), Marking: inst.MarkingSnapshot(), Stats: inst.StatsSnapshot(), Store: inst.DataSnapshot()}
		fast := measure(func() {
			if err := compliance.CheckFast(ctx, ops); err != nil {
				log.Fatal(err)
			}
		})
		// Replay on the full physical history (reduction included — that
		// is the work a replay-based checker must do).
		replay := measure(func() {
			red := history.Reduce(baseInfo, events)
			if _, err := compliance.Replay(target, targetInfo, red); err != nil {
				log.Fatal(err)
			}
		})
		rows = append(rows, monitor.Row{
			Label: fmt.Sprintf("%d", len(events)),
			Values: []string{
				fmt.Sprintf("%d", len(reduced)),
				fmt.Sprintf("%.2f", float64(fast)/1e3),
				fmt.Sprintf("%.2f", float64(replay)/1e3),
				fmt.Sprintf("%.0fx", float64(replay)/float64(fast)),
			},
		})
	}
	emit("Fig.1 / E1: compliance check cost (fast conditions vs history replay)",
		[]string{"history_events", "reduced_events", "fast_us", "replay_us", "speedup"}, rows)
}

// measure returns the best-of-3 average ns of f over enough repetitions.
func measure(f func()) int64 {
	best := int64(1 << 62)
	for round := 0; round < 3; round++ {
		reps := 1
		for {
			start := time.Now()
			for i := 0; i < reps; i++ {
				f()
			}
			elapsed := time.Since(start)
			if elapsed > 2*time.Millisecond || reps >= 1<<16 {
				per := elapsed.Nanoseconds() / int64(reps)
				if per < best {
					best = per
				}
				break
			}
			reps *= 4
		}
	}
	return best
}

// fig2 compares the three biased-instance representations: memory per
// biased instance and schema-access latency — the hybrid substitution
// block trade-off of Fig. 2.
func fig2() {
	n := 2000 * *scale
	var rows []monitor.Row
	for _, strat := range storage.Strategies() {
		e := newEngine()
		e.SetStorageStrategy(strat)
		rng := rand.New(rand.NewSource(*seed))
		insts, err := sim.BuildPopulation(e, rng, sim.DefaultPopulationOpts(n))
		if err != nil {
			log.Fatal(err)
		}
		var biasBytes, stateBytes, biased int
		for _, inst := range insts {
			fp := inst.Footprint()
			stateBytes += fp.StateBytes
			if inst.Biased() {
				biased++
				biasBytes += fp.BiasBytes
			}
		}
		// Access cost: walk the instance view (the operation every engine
		// step performs).
		var sink int
		probe := firstBiased(insts)
		access := measure(func() {
			v := probe.View()
			sink += len(v.NodeIDs())
		})
		_ = sink
		perBiased := 0
		if biased > 0 {
			perBiased = biasBytes / biased
		}
		rows = append(rows, monitor.Row{
			Label: strat.String(),
			Values: []string{
				fmt.Sprintf("%d", n),
				fmt.Sprintf("%d", biased),
				fmt.Sprintf("%d", perBiased),
				fmt.Sprintf("%.1f", float64(biasBytes)/1024),
				fmt.Sprintf("%.1f", float64(stateBytes)/1024),
				fmt.Sprintf("%.2f", float64(access)/1e3),
			},
		})
	}
	emit("Fig.2 / E2: biased-instance representation (memory vs access cost)",
		[]string{"strategy", "instances", "biased", "bias_bytes/biased", "bias_kb_total", "state_kb_total", "view_access_us"}, rows)
}

func firstBiased(insts []*engine.Instance) *engine.Instance {
	for _, inst := range insts {
		if inst.Biased() {
			return inst
		}
	}
	return insts[0]
}

// fig3 migrates whole populations on the fly and reports throughput and
// outcome distribution — the Fig. 3 experiment at scale.
func fig3() {
	var rows []monitor.Row
	for _, n := range []int{1000 * *scale, 5000 * *scale, 10000 * *scale} {
		e := newEngine()
		rng := rand.New(rand.NewSource(*seed))
		if _, err := sim.BuildPopulation(e, rng, sim.DefaultPopulationOpts(n)); err != nil {
			log.Fatal(err)
		}
		mgr := evolution.NewManager(e)
		report, err := mgr.Evolve("online_order", sim.OnlineOrderTypeChange(), evolution.Options{})
		if err != nil {
			log.Fatal(err)
		}
		perInst := float64(report.Elapsed.Microseconds()) / float64(report.Total())
		rows = append(rows, monitor.Row{
			Label: fmt.Sprintf("%d", n),
			Values: []string{
				fmt.Sprintf("%.1f", float64(report.Elapsed.Milliseconds())),
				fmt.Sprintf("%.0f", float64(report.Total())/report.Elapsed.Seconds()),
				fmt.Sprintf("%.1f", perInst),
				fmt.Sprintf("%d", report.Count(evolution.Migrated)),
				fmt.Sprintf("%d", report.Count(evolution.StateConflict)),
				fmt.Sprintf("%d", report.Count(evolution.StructuralConflict)),
			},
		})
	}
	emit("Fig.3 / E3: on-the-fly migration of instance populations",
		[]string{"instances", "elapsed_ms", "inst_per_s", "us_per_inst", "migrated", "state_conf", "struct_conf"}, rows)
}

// verifyCost measures buildtime verification across schema sizes (E4).
func verifyCost() {
	var rows []monitor.Row
	for _, depth := range []int{2, 3, 4, 5} {
		rng := rand.New(rand.NewSource(*seed))
		opts := sim.DefaultSchemaOpts()
		opts.MaxDepth = depth
		opts.MaxSeq = 5
		s := sim.RandomSchema(rng, fmt.Sprintf("v%d", depth), opts)
		ns := measure(func() {
			if res := verify.Check(s); !res.OK() {
				log.Fatal(res.Err())
			}
		})
		rows = append(rows, monitor.Row{
			Label: fmt.Sprintf("%d", s.NumNodes()),
			Values: []string{
				fmt.Sprintf("%d", len(s.Edges())),
				fmt.Sprintf("%.1f", float64(ns)/1e3),
			},
		})
	}
	emit("E4: buildtime verification cost vs schema size",
		[]string{"nodes", "edges", "verify_us"}, rows)
}

// adHocCost measures the full ad-hoc change round trip (trial + verify +
// state check + commit + adaptation) (E5).
func adHocCost() {
	var rows []monitor.Row
	for _, strat := range storage.Strategies() {
		e := newEngine()
		e.SetStorageStrategy(strat)
		// Fresh instance per round; measure total wall time of the change.
		const rounds = 200
		start := time.Now()
		for i := 0; i < rounds; i++ {
			inst, err := e.CreateInstance("online_order", 0)
			if err != nil {
				log.Fatal(err)
			}
			ops := []change.Operation{
				&change.SerialInsert{
					Node: &model.Node{ID: fmt.Sprintf("x%d", i), Type: model.NodeActivity, Role: "sales", Template: "x"},
					Pred: "collect_data",
					Succ: "confirm_order",
				},
				&change.InsertSyncEdge{From: "collect_data", To: "compose_order"},
			}
			if err := change.ApplyAdHoc(inst, ops...); err != nil {
				log.Fatal(err)
			}
		}
		elapsed := time.Since(start)
		rows = append(rows, monitor.Row{
			Label:  strat.String(),
			Values: []string{fmt.Sprintf("%.1f", float64(elapsed.Microseconds())/rounds)},
		})
	}
	emit("E5: ad-hoc instance change latency (two operations, incl. verification)",
		[]string{"strategy", "us_per_change"}, rows)
}

// adaptAblation compares incremental state adaptation against replay-based
// adaptation during migration (E6).
func adaptAblation() {
	var rows []monitor.Row
	for _, adapt := range []evolution.AdaptMode{evolution.AdaptIncremental, evolution.AdaptReplay} {
		n := 2000 * *scale
		e := newEngine()
		rng := rand.New(rand.NewSource(*seed))
		if _, err := sim.BuildPopulation(e, rng, sim.DefaultPopulationOpts(n)); err != nil {
			log.Fatal(err)
		}
		mgr := evolution.NewManager(e)
		report, err := mgr.Evolve("online_order", sim.OnlineOrderTypeChange(), evolution.Options{Adapt: adapt})
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, monitor.Row{
			Label: adapt.String(),
			Values: []string{
				fmt.Sprintf("%d", report.Total()),
				fmt.Sprintf("%.1f", float64(report.Elapsed.Milliseconds())),
				fmt.Sprintf("%.1f", float64(report.Elapsed.Microseconds())/float64(report.Total())),
				fmt.Sprintf("%d", report.Count(evolution.Migrated)),
			},
		})
	}
	emit("E6: state adaptation ablation (incremental vs replay)",
		[]string{"mode", "instances", "elapsed_ms", "us_per_inst", "migrated"}, rows)
}

// concurrentLoad measures user-operation latency while a bulk migration
// runs concurrently (E8: "on-the-fly ... avoid performance penalties").
func concurrentLoad() {
	n := 5000 * *scale
	var rows []monitor.Row
	for _, withMigration := range []bool{false, true} {
		e := newEngine()
		rng := rand.New(rand.NewSource(*seed))
		if _, err := sim.BuildPopulation(e, rng, sim.DefaultPopulationOpts(n)); err != nil {
			log.Fatal(err)
		}
		// A dedicated working set of fresh instances the "users" drive.
		work := make([]*engine.Instance, 200)
		for i := range work {
			inst, err := e.CreateInstance("online_order", 0)
			if err != nil {
				log.Fatal(err)
			}
			work[i] = inst
		}
		var migElapsed time.Duration
		var wg sync.WaitGroup
		if withMigration {
			wg.Add(1)
			go func() {
				defer wg.Done()
				mgr := evolution.NewManager(e)
				start := time.Now()
				if _, err := mgr.Evolve("online_order", sim.OnlineOrderTypeChange(),
					evolution.Options{Workers: runtime.GOMAXPROCS(0) / 2}); err != nil {
					log.Fatal(err)
				}
				migElapsed = time.Since(start)
			}()
		}
		var ops atomic.Int64
		start := time.Now()
		for _, inst := range work {
			if err := e.CompleteActivity(inst.ID(), "get_order", "ann", map[string]any{"out": "o"}); err != nil {
				// The migration may have moved the instance to v2; the
				// node still exists, so errors are unexpected.
				log.Fatal(err)
			}
			ops.Add(1)
		}
		userElapsed := time.Since(start)
		wg.Wait()
		label := "baseline"
		if withMigration {
			label = "during-migration"
		}
		vals := []string{
			fmt.Sprintf("%.1f", float64(userElapsed.Microseconds())/float64(ops.Load())),
		}
		if withMigration {
			vals = append(vals, fmt.Sprintf("%.1f", float64(migElapsed.Milliseconds())))
		} else {
			vals = append(vals, "-")
		}
		rows = append(rows, monitor.Row{Label: label, Values: vals})
	}
	emit(fmt.Sprintf("E8: user operation latency under concurrent migration (%d instances)", n),
		[]string{"condition", "us_per_user_op", "migration_ms"}, rows)
}
