// Package state implements ADEPT2 instance markings and their evaluation
// rules. A marking assigns every node a NodeState (NotActivated, Activated,
// Running, Completed, Skipped) and every edge an EdgeState (NotSignaled,
// TrueSignaled, FalseSignaled) — the state model visible in Fig. 1 of the
// paper ("completed", "activated", "running", "TRUE signaled", and the
// "Disabled" state which this implementation calls Skipped).
//
// A Marking is array-backed: node and edge states live in dense slices
// indexed by the interned model.NodeIdx/model.EdgeIdx of the view's
// Topology, so the per-event hot loops (evaluation, replay, adaptation)
// perform pure array indexing — no string-keyed map traffic. The string
// API (Node, SetNode, Edge, ...) remains at the package boundary and
// interns on entry. When the underlying view changes structurally (ad-hoc
// change, migration, overlay bias refresh) the marking transparently
// remaps its state onto the new topology by node/edge identity — see
// ensure.
//
// Evaluate propagates markings by edge-driven incremental propagation: the
// marking tracks which nodes had an incoming edge signaled (or were
// themselves demoted) since the last evaluation, and Evaluate re-examines
// only that affected region, cascading through skips — O(affected) per
// event instead of a global fixpoint over all nodes. The same rules run
// during normal execution, after ad-hoc changes, and during migration
// state adaptation, which is what makes automatic state adaptation
// possible. Property tests (incremental_test.go) compare the interned
// evaluator against a retained string-keyed fixpoint reference.
package state

import (
	"fmt"
	"slices"
	"sort"

	"adept2/internal/arena"
	"adept2/internal/bitset"
	"adept2/internal/model"
)

// NodeState is the execution state of a node within one instance.
type NodeState uint8

const (
	// NotActivated: the node has not become executable yet.
	NotActivated NodeState = iota
	// Activated: all predecessors are satisfied; work items are offered.
	Activated
	// Running: a user or the system has started the node.
	Running
	// Completed: the node finished; outgoing edges are signaled.
	Completed
	// Skipped: the node lies on a dead path and will never execute
	// (the paper's "Disabled").
	Skipped
)

var nodeStateNames = [...]string{
	NotActivated: "not-activated",
	Activated:    "activated",
	Running:      "running",
	Completed:    "completed",
	Skipped:      "skipped",
}

func (s NodeState) String() string {
	if int(s) < len(nodeStateNames) {
		return nodeStateNames[s]
	}
	return fmt.Sprintf("node-state(%d)", uint8(s))
}

// Started reports whether the node has entered execution (running or
// completed). Fast compliance conditions are phrased in terms of this
// predicate.
func (s NodeState) Started() bool { return s == Running || s == Completed }

// EdgeState is the signaling state of an edge within one instance.
type EdgeState uint8

const (
	// NotSignaled: the source has not finished yet.
	NotSignaled EdgeState = iota
	// TrueSignaled: the source completed and selected this edge.
	TrueSignaled
	// FalseSignaled: the edge lies on a dead path.
	FalseSignaled
)

var edgeStateNames = [...]string{
	NotSignaled:   "not-signaled",
	TrueSignaled:  "true-signaled",
	FalseSignaled: "false-signaled",
}

func (s EdgeState) String() string {
	if int(s) < len(edgeStateNames) {
		return edgeStateNames[s]
	}
	return fmt.Sprintf("edge-state(%d)", uint8(s))
}

// Marking is the complete execution state of one process instance over its
// schema view. Node states, skip stamps, and edge signals are dense arrays
// indexed by the interned indices of the bound topology; the zero state of
// every node is NotActivated and of every edge NotSignaled.
//
// The marking additionally maintains the evaluation worklist: every edge
// signal records its target node and every demotion to NotActivated
// records the node itself as pending re-examination. Evaluate consumes the
// worklist; between mutations and the next Evaluate call the marking is at
// a fixpoint for all nodes NOT on the worklist.
//
// A marking is bound to the topology of the view it was created on. Every
// entry point that receives a view re-binds automatically when the view's
// topology changed (remapping state by node/edge identity), so markings
// survive ad-hoc changes, overlay bias refreshes, and migrations without
// caller-side bookkeeping.
type Marking struct {
	topo    *model.Topology
	nodes   []NodeState // dense by NodeIdx
	skipSeq []int32     // dense by NodeIdx; see SkipSeq
	edges   []EdgeState // dense by EdgeIdx

	// pending is the evaluation worklist: nodes whose activation/skip
	// question may have a new answer. pendingSet is a bitset (sized by the
	// view's node count) deduplicating it.
	pending    []model.NodeIdx
	pendingSet bitset.Set
}

// NewMarking returns an empty marking (everything not activated) bound to
// the view's topology.
func NewMarking(v model.SchemaView) *Marking {
	t := v.Topology()
	return &Marking{
		topo:       t,
		nodes:      make([]NodeState, t.NumNodes()),
		skipSeq:    make([]int32, t.NumNodes()),
		edges:      make([]EdgeState, t.NumEdges()),
		pendingSet: bitset.New(t.NumNodes()),
	}
}

// Topology returns the topology the marking is currently bound to.
func (m *Marking) Topology() *model.Topology { return m.topo }

// ensure re-binds the marking to the given topology if it changed,
// remapping all state by node/edge identity. States of nodes and edges no
// longer present are dropped (compliance guarantees deleted nodes never
// started); newly added nodes and edges start in their zero state.
func (m *Marking) ensure(t *model.Topology) {
	if m.topo == t {
		return
	}
	m.remap(t)
}

// sameShape reports whether two topologies intern identical node and edge
// sequences, so indices carry over one-to-one. The on-the-fly storage
// strategy materializes a fresh schema (and thus a fresh topology pointer)
// per access — this check turns those re-binds into a pointer swap
// instead of a full remap copy. The ID comparisons are cheap: clones share
// their ID string backing, so equality short-circuits on the data pointer.
func sameShape(a, b *model.Topology) bool {
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for i, n := 0, a.NumNodes(); i < n; i++ {
		if a.ID(model.NodeIdx(i)) != b.ID(model.NodeIdx(i)) {
			return false
		}
	}
	for i, n := 0, a.NumEdges(); i < n; i++ {
		if a.EdgeAt(model.EdgeIdx(i)).Key() != b.EdgeAt(model.EdgeIdx(i)).Key() {
			return false
		}
	}
	return true
}

// RemapScratch amortizes the dense-array allocations of marking remaps:
// loops that rebind many markings onto one target topology (the fast-mode
// migration workers) carve each instance's four target arrays out of
// block-allocated arenas instead of making four fresh allocations per
// instance. Carved chunks are owned by their marking for good (remaps
// replace, never grow, the arrays), so the arena only ever moves forward.
// The zero value is ready to use; a scratch must not be shared between
// goroutines.
type RemapScratch struct {
	nodes   []NodeState
	skip    []int32
	edges   []EdgeState
	pendSet []uint64
}

// RebindTo re-binds the marking to the topology like ensure, drawing the
// target arrays from the scratch arenas. Passing a nil scratch degrades to
// the allocating remap.
func (m *Marking) RebindTo(t *model.Topology, sc *RemapScratch) {
	if m.topo == t {
		return
	}
	if sc == nil || sameShape(m.topo, t) {
		m.remap(t)
		return
	}
	m.remapInto(t,
		arena.Carve(&sc.nodes, t.NumNodes()),
		arena.Carve(&sc.skip, t.NumNodes()),
		arena.Carve(&sc.edges, t.NumEdges()),
		arena.Carve(&sc.pendSet, bitset.Words(t.NumNodes())))
}

func (m *Marking) remap(t *model.Topology) {
	if sameShape(m.topo, t) {
		m.topo = t
		return
	}
	m.remapInto(t,
		make([]NodeState, t.NumNodes()),
		make([]int32, t.NumNodes()),
		make([]EdgeState, t.NumEdges()),
		bitset.New(t.NumNodes()))
}

// remapInto moves the marking's state onto topology t using the provided
// (zeroed, correctly sized) target arrays.
func (m *Marking) remapInto(t *model.Topology, nodes []NodeState, skip []int32, edges []EdgeState, pendingSet bitset.Set) {
	old := m.topo
	for i := range m.nodes {
		if m.nodes[i] == NotActivated && m.skipSeq[i] == 0 {
			continue
		}
		if j, ok := t.Idx(old.ID(model.NodeIdx(i))); ok {
			nodes[j] = m.nodes[i]
			skip[j] = m.skipSeq[i]
		}
	}
	for i := range m.edges {
		if m.edges[i] == NotSignaled {
			continue
		}
		if j, ok := t.EdgeIdxOf(old.EdgeAt(model.EdgeIdx(i)).Key()); ok {
			edges[j] = m.edges[i]
		}
	}
	// The retained pending entries shrink or keep their count, so the old
	// slice can be compacted in place (reads stay ahead of writes).
	pending := m.pending[:0]
	for _, pi := range m.pending {
		j, ok := t.Idx(old.ID(pi))
		if !ok {
			continue
		}
		if !pendingSet.Has(int(j)) {
			pendingSet.Set(int(j))
			pending = append(pending, j)
		}
	}
	m.topo = t
	m.nodes, m.skipSeq, m.edges = nodes, skip, edges
	m.pending, m.pendingSet = pending, pendingSet
}

// markPendingAt queues a node for re-examination by the next Evaluate.
func (m *Marking) markPendingAt(i model.NodeIdx) {
	if !m.pendingSet.Has(int(i)) {
		m.pendingSet.Set(int(i))
		m.pending = append(m.pending, i)
	}
}

// Node returns the state of a node (NotActivated for nodes unknown to the
// bound topology).
func (m *Marking) Node(id string) NodeState {
	if i, ok := m.topo.Idx(id); ok {
		return m.nodes[i]
	}
	return NotActivated
}

// NodeAt returns the state of an interned node.
func (m *Marking) NodeAt(i model.NodeIdx) NodeState { return m.nodes[i] }

// Edge returns the state of an edge.
func (m *Marking) Edge(k model.EdgeKey) EdgeState {
	if i, ok := m.topo.EdgeIdxOf(k); ok {
		return m.edges[i]
	}
	return NotSignaled
}

// EdgeAt returns the state of an interned edge.
func (m *Marking) EdgeAt(i model.EdgeIdx) EdgeState { return m.edges[i] }

// SetNode sets a node state directly. Callers outside this package should
// prefer the Start/Complete/Evaluate entry points. Demoting a node to
// NotActivated queues it for re-examination. Setting a node unknown to the
// bound topology is a no-op (states exist only for view nodes).
func (m *Marking) SetNode(id string, s NodeState) {
	if i, ok := m.topo.Idx(id); ok {
		m.SetNodeAt(i, s)
	}
}

// SetNodeAt sets the state of an interned node (see SetNode).
func (m *Marking) SetNodeAt(i model.NodeIdx, s NodeState) {
	if m.nodes[i] == s {
		return
	}
	m.nodes[i] = s
	if s == NotActivated {
		m.markPendingAt(i)
	}
}

// SetEdge sets an edge state directly. Any state change queues the edge's
// target node for re-examination. Setting an edge unknown to the bound
// topology is a no-op.
func (m *Marking) SetEdge(k model.EdgeKey, s EdgeState) {
	if i, ok := m.topo.EdgeIdxOf(k); ok {
		m.SetEdgeAt(i, s)
	}
}

// SetEdgeAt sets the state of an interned edge (see SetEdge).
func (m *Marking) SetEdgeAt(i model.EdgeIdx, s EdgeState) {
	if m.edges[i] == s {
		return
	}
	m.edges[i] = s
	if to := m.topo.EdgeTarget(i); to != model.InvalidNode {
		m.markPendingAt(to)
	}
}

// SkipSeq returns the event sequence number at which the node was skipped
// (0 if the node is not skipped).
func (m *Marking) SkipSeq(id string) int {
	if i, ok := m.topo.Idx(id); ok {
		return int(m.skipSeq[i])
	}
	return 0
}

// SkipSeqAt returns the skip stamp of an interned node (see SkipSeq).
func (m *Marking) SkipSeqAt(i model.NodeIdx) int { return int(m.skipSeq[i]) }

// NodesInState returns the IDs of all nodes currently in the given state,
// sorted for determinism. NotActivated is not enumerable (it is the
// default state).
func (m *Marking) NodesInState(s NodeState) []string {
	if s == NotActivated {
		return nil
	}
	var ids []string
	for i, ns := range m.nodes {
		if ns == s {
			ids = append(ids, m.topo.ID(model.NodeIdx(i)))
		}
	}
	sort.Strings(ids)
	return ids
}

// Clone returns a deep copy of the marking, including the pending
// evaluation worklist. The clone shares the (immutable) topology binding.
func (m *Marking) Clone() *Marking {
	return &Marking{
		topo:       m.topo,
		nodes:      slices.Clone(m.nodes),
		skipSeq:    slices.Clone(m.skipSeq),
		edges:      slices.Clone(m.edges),
		pending:    slices.Clone(m.pending),
		pendingSet: slices.Clone(m.pendingSet),
	}
}

// CountNodes returns the number of nodes holding a non-default state; it
// feeds the storage footprint accounting of the Fig. 2 experiment.
func (m *Marking) CountNodes() int {
	n := 0
	for _, s := range m.nodes {
		if s != NotActivated {
			n++
		}
	}
	return n
}

// ApproxBytes estimates the memory held by the marking: the dense state
// arrays scale with the view size (a byte per node/edge state plus the
// skip stamps), not with the number of non-default entries.
func (m *Marking) ApproxBytes() int {
	return len(m.nodes)*5 + len(m.edges) + 8*len(m.pendingSet) + 4*cap(m.pending)
}

// Init marks the start node of the view completed and signals its outgoing
// edges — the state of a freshly created instance before the first
// Evaluate pass.
func (m *Marking) Init(v model.SchemaView) {
	m.ensure(v.Topology())
	start := m.topo.StartIdx()
	if start == model.InvalidNode {
		return
	}
	m.SetNodeAt(start, Completed)
	nt := m.topo.At(start)
	for _, ei := range nt.OutControlIdx {
		m.SetEdgeAt(ei, TrueSignaled)
	}
	for _, ei := range nt.OutSyncIdx {
		m.SetEdgeAt(ei, TrueSignaled)
	}
}

// Start transitions an activated node to running.
func (m *Marking) Start(id string) error {
	i, ok := m.topo.Idx(id)
	if !ok {
		return fmt.Errorf("state: start %q: node not in schema", id)
	}
	return m.StartAt(i)
}

// StartAt transitions an activated interned node to running.
func (m *Marking) StartAt(i model.NodeIdx) error {
	if got := m.nodes[i]; got != Activated {
		return fmt.Errorf("state: start %q: node is %s, not activated", m.topo.ID(i), got)
	}
	m.nodes[i] = Running
	return nil
}

// Complete transitions a running node to completed and signals its
// outgoing control and sync edges. For an XOR split, decision selects the
// outgoing control edge code; all other edges are false-signaled. Loop
// edges are never signaled here: loop iteration is performed by ResetLoop.
func (m *Marking) Complete(v model.SchemaView, id string, decision int) error {
	m.ensure(v.Topology())
	i, ok := m.topo.Idx(id)
	if !ok {
		return fmt.Errorf("state: complete %q: node not in schema", id)
	}
	return m.CompleteAt(i, decision)
}

// CompleteAt transitions a running interned node to completed (see
// Complete).
func (m *Marking) CompleteAt(i model.NodeIdx, decision int) error {
	if got := m.nodes[i]; got != Running {
		return fmt.Errorf("state: complete %q: node is %s, not running", m.topo.ID(i), got)
	}
	nt := m.topo.At(i)
	m.nodes[i] = Completed
	for k, e := range nt.OutControl {
		if nt.Node.Type == model.NodeXORSplit && e.Code != decision {
			m.SetEdgeAt(nt.OutControlIdx[k], FalseSignaled)
		} else {
			m.SetEdgeAt(nt.OutControlIdx[k], TrueSignaled)
		}
	}
	for _, ei := range nt.OutSyncIdx {
		m.SetEdgeAt(ei, TrueSignaled)
	}
	return nil
}

// skipAt marks a node dead and false-signals everything leaving it. A node
// skipped earlier (non-zero stamp) keeps its original stamp.
func (m *Marking) skipAt(nt *model.NodeTopology, i model.NodeIdx, seq int) {
	m.nodes[i] = Skipped
	if m.skipSeq[i] == 0 {
		m.skipSeq[i] = int32(seq)
	}
	for _, ei := range nt.OutControlIdx {
		m.SetEdgeAt(ei, FalseSignaled)
	}
	for _, ei := range nt.OutSyncIdx {
		m.SetEdgeAt(ei, FalseSignaled)
	}
}

// Evaluate propagates the marking across the affected region: every node
// with a newly signaled incoming edge (or demoted by ResetLoop/Adapt) is
// re-examined; nodes whose incoming control edges are all true-signaled
// and whose incoming sync edges are all signaled become Activated; nodes
// on dead paths become Skipped, which cascades to their successors. seq
// stamps newly skipped nodes (see SkipSeq). It returns the IDs of newly
// activated nodes in view order.
func Evaluate(v model.SchemaView, m *Marking, seq int) []string {
	t := v.Topology()
	m.ensure(t)
	return idsOf(t, propagate(t, m, seq, nil))
}

// EvaluateInto is Evaluate with a caller-owned activation buffer: newly
// activated nodes are appended to buf[:0] as interned indices and the
// (possibly re-grown) buffer is returned, so per-event loops (compliance
// replay) reuse one allocation across all evaluations.
func EvaluateInto(v model.SchemaView, m *Marking, seq int, buf []model.NodeIdx) []model.NodeIdx {
	t := v.Topology()
	m.ensure(t)
	return propagate(t, m, seq, buf[:0])
}

func idsOf(t *model.Topology, idxs []model.NodeIdx) []string {
	if len(idxs) == 0 {
		return nil
	}
	ids := make([]string, len(idxs))
	for i, n := range idxs {
		ids[i] = t.ID(n)
	}
	return ids
}

// propagate is the incremental evaluation core: it processes the marking's
// pending worklist until empty. Skips triggered while draining re-queue
// their successors, so the propagation covers exactly the affected region.
// Newly activated nodes are appended to the provided buffer, which is
// returned sorted by view order.
func propagate(topo *model.Topology, m *Marking, seq int, activated []model.NodeIdx) []model.NodeIdx {
	for i := 0; i < len(m.pending); i++ {
		ni := m.pending[i]
		m.pendingSet.Clear(int(ni)) // a later signal must be able to re-queue
		if m.nodes[ni] != NotActivated {
			continue
		}
		nt := topo.At(ni)
		n := nt.Node
		if n.Type == model.NodeStart {
			continue
		}
		inC := nt.InControlIdx
		if len(inC) == 0 {
			continue // disconnected; verifier rejects such schemas
		}
		trueC, falseC := 0, 0
		for _, ei := range inC {
			switch m.edges[ei] {
			case TrueSignaled:
				trueC++
			case FalseSignaled:
				falseC++
			}
		}
		syncReady := true
		for _, ei := range nt.InSyncIdx {
			if m.edges[ei] == NotSignaled {
				syncReady = false
				break
			}
		}

		switch n.Type {
		case model.NodeXORJoin:
			switch {
			case trueC == 1 && trueC+falseC == len(inC) && syncReady:
				m.nodes[ni] = Activated
				activated = append(activated, ni)
			case falseC == len(inC):
				m.skipAt(nt, ni, seq)
			}
		case model.NodeANDJoin:
			switch {
			case trueC == len(inC) && syncReady:
				m.nodes[ni] = Activated
				activated = append(activated, ni)
			case falseC == len(inC):
				m.skipAt(nt, ni, seq)
			}
		default:
			// Single incoming control edge (activities, splits, loop
			// start/end, end node).
			switch {
			case trueC == len(inC) && syncReady:
				m.nodes[ni] = Activated
				activated = append(activated, ni)
			case falseC > 0:
				m.skipAt(nt, ni, seq)
			}
		}
	}
	m.pending = m.pending[:0]
	if len(activated) > 1 {
		slices.Sort(activated)
	}
	return activated
}

// adaptCore rewinds the derivable parts of the marking against the (possibly
// changed) view: the marking is remapped onto the view's topology (dropping
// states of deleted nodes), derived node states are demoted, and all edge
// signals re-derived from the completed frontier. The subsequent evaluation
// pass — incremental in Adapt, the fixpoint in the test reference — turns
// the result back into a complete marking.
func adaptCore(v model.SchemaView, m *Marking, decisions map[string]int) {
	topo := v.Topology()
	m.ensure(topo)
	// Demote derived states; keep started nodes. The demotions queue every
	// affected node for re-examination.
	for i := range m.nodes {
		switch m.nodes[i] {
		case Activated, Skipped:
			m.SetNodeAt(model.NodeIdx(i), NotActivated)
		}
	}
	// All edge signals are re-derived; the re-signaling below queues every
	// target whose inputs change.
	for i := range m.edges {
		m.edges[i] = NotSignaled
	}
	m.Init(v)
	start := topo.StartIdx()
	for i := range m.nodes {
		ni := model.NodeIdx(i)
		if m.nodes[i] != Completed || ni == start {
			continue
		}
		nt := topo.At(ni)
		isXOR := nt.Node.Type == model.NodeXORSplit
		var dec int
		if isXOR {
			dec = decisions[topo.ID(ni)]
		}
		for k, e := range nt.OutControl {
			if isXOR && e.Code != dec {
				m.SetEdgeAt(nt.OutControlIdx[k], FalseSignaled)
			} else {
				m.SetEdgeAt(nt.OutControlIdx[k], TrueSignaled)
			}
		}
		for _, ei := range nt.OutSyncIdx {
			m.SetEdgeAt(ei, TrueSignaled)
		}
	}
}

// Adapt recomputes the marking after the underlying schema view changed
// (ad-hoc change or migration): the efficient state adaptation procedure
// the paper refers to for migrating instances. States of started nodes
// (Running, Completed) are preserved; everything derivable — activations,
// skips, edge signals — is recomputed from the completed frontier.
//
// decisions supplies the selection code of every completed XOR split
// (taken from the execution history) so dead paths re-derive identically.
// Skip stamps of nodes that remain skipped are preserved. Returns the
// nodes activated after adaptation, in view order.
func Adapt(v model.SchemaView, m *Marking, decisions map[string]int, seq int) []string {
	adaptCore(v, m, decisions)
	activated := Evaluate(v, m, seq)
	// Prune stale skip stamps (Evaluate preserved stamps of re-skipped
	// nodes).
	for i := range m.skipSeq {
		if m.skipSeq[i] != 0 && m.nodes[i] != Skipped {
			m.skipSeq[i] = 0
		}
	}
	return activated
}

// ResetLoop rewinds a loop body for the next iteration: every node in the
// region (including the loop start and loop end) returns to NotActivated
// and every edge between region nodes to NotSignaled. The loop start's
// incoming control edge from outside the region remains true-signaled, so
// the next Evaluate pass re-activates the loop start.
func ResetLoop(v model.SchemaView, m *Marking, region map[string]bool) {
	topo := v.Topology()
	m.ensure(topo)
	for id := range region {
		i, ok := topo.Idx(id)
		if !ok {
			continue
		}
		m.SetNodeAt(i, NotActivated)
		m.skipSeq[i] = 0
		nt := topo.At(i)
		for k, e := range nt.OutControl {
			if region[e.To] {
				m.SetEdgeAt(nt.OutControlIdx[k], NotSignaled)
			}
		}
		for k, e := range nt.OutSync {
			if region[e.To] {
				m.SetEdgeAt(nt.OutSyncIdx[k], NotSignaled)
			}
		}
		for k, e := range nt.OutLoop {
			if region[e.To] {
				m.SetEdgeAt(nt.OutLoopIdx[k], NotSignaled)
			}
		}
	}
}
