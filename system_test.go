package adept2_test

import (
	"path/filepath"
	"strings"
	"testing"

	"adept2"
	"adept2/internal/sim"
	"adept2/internal/state"
)

func demoSystem(t *testing.T, opts ...adept2.Option) *adept2.System {
	t.Helper()
	opts = append([]adept2.Option{adept2.WithOrg(sim.Org())}, opts...)
	sys := adept2.New(opts...)
	if err := sys.Deploy(sim.OnlineOrder()); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	return sys
}

func TestSystemEndToEnd(t *testing.T) {
	sys := demoSystem(t)
	inst, err := sys.CreateInstance("online_order")
	if err != nil {
		t.Fatal(err)
	}
	items := sys.WorkItems("ann")
	if len(items) != 1 {
		t.Fatalf("worklist = %v", items)
	}
	if err := sys.Claim(items[0].ID, "ann"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(inst.ID(), "get_order", "ann"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Complete(inst.ID(), "get_order", "ann", map[string]any{"out": "o1"}); err != nil {
		t.Fatal(err)
	}
	// Ad-hoc change through the facade.
	if err := sys.AdHocChange(inst.ID(), &adept2.InsertSyncEdge{From: "collect_data", To: "compose_order"}); err != nil {
		t.Fatal(err)
	}
	if !inst.Biased() {
		t.Fatal("instance should be biased")
	}
	// Evolution through the facade.
	report, err := sys.Evolve("online_order", sim.OnlineOrderTypeChange(), adept2.EvolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if report.Count(adept2.Migrated) != 1 {
		t.Fatalf("report: %+v", report.Results)
	}
	if inst.Version() != 2 {
		t.Fatalf("version = %d", inst.Version())
	}
	// Monitoring helpers produce content.
	if !strings.Contains(adept2.RenderInstance(inst), "biased") {
		t.Fatal("RenderInstance should mention bias")
	}
	if !strings.Contains(adept2.FormatReport(report), "migrated") {
		t.Fatal("FormatReport should mention outcome")
	}
	if !strings.Contains(adept2.RenderSchema(inst.View()), "send_questions") {
		t.Fatal("RenderSchema should include the inserted activity")
	}
}

func TestSystemJournalRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.ndjson")

	// Phase 1: run a scenario with a journal.
	sys, err := adept2.Open(path, adept2.WithOrg(sim.Org()))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Deploy(sim.OnlineOrder()); err != nil {
		t.Fatal(err)
	}
	i1, err := sys.CreateInstance("online_order")
	if err != nil {
		t.Fatal(err)
	}
	i2, err := sys.CreateInstance("online_order")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Complete(i1.ID(), "get_order", "ann", map[string]any{"out": "o1"}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Complete(i1.ID(), "collect_data", "ann", nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.Complete(i1.ID(), "compose_order", "bob", nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.AdHocChange(i2.ID(), sim.OnlineOrderBiasI2()...); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Evolve("online_order", sim.OnlineOrderTypeChange(), adept2.EvolveOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: recover from the journal ("after the crash").
	sys2, err := adept2.Open(path, adept2.WithOrg(sim.Org()))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer sys2.Close()

	r1, ok := sys2.Instance(i1.ID())
	if !ok {
		t.Fatal("i1 missing after recovery")
	}
	r2, ok := sys2.Instance(i2.ID())
	if !ok {
		t.Fatal("i2 missing after recovery")
	}
	// i1 migrated to v2 with adapted state.
	if r1.Version() != 2 {
		t.Fatalf("recovered i1 version = %d", r1.Version())
	}
	if got := r1.NodeState("send_questions"); got != state.Activated {
		t.Fatalf("recovered send_questions = %s", got)
	}
	// i2 kept its structural conflict on v1 with its bias.
	if r2.Version() != 1 || !r2.Biased() {
		t.Fatalf("recovered i2: version=%d biased=%v", r2.Version(), r2.Biased())
	}
	// Recovered histories match the originals.
	if len(r1.HistoryEvents()) != len(i1.HistoryEvents()) {
		t.Fatal("history length mismatch after recovery")
	}
	// Work continues seamlessly after recovery.
	if err := sys2.Complete(r1.ID(), "send_questions", "ann", nil); err != nil {
		t.Fatalf("continue after recovery: %v", err)
	}
}

func TestSystemStorageStrategyOption(t *testing.T) {
	sys := demoSystem(t, adept2.WithStorageStrategy(adept2.StorageFullCopy))
	inst, err := sys.CreateInstance("online_order")
	if err != nil {
		t.Fatal(err)
	}
	if inst.Strategy() != adept2.StorageFullCopy {
		t.Fatalf("strategy = %s", inst.Strategy())
	}
	if err := sys.AdHocChange("nope", &adept2.DeleteSyncEdge{From: "a", To: "b"}); err == nil {
		t.Fatal("unknown instance must fail")
	}
}

func TestSystemDecisionAndLoopCompletion(t *testing.T) {
	b := adept2.NewBuilder("flow")
	ch := b.Choice("",
		b.Activity("x", "X", adept2.WithRole("worker")),
		b.Activity("y", "Y", adept2.WithRole("worker")),
	)
	loop := b.Loop(b.Activity("w", "W", adept2.WithRole("worker")), "", 5)
	schema, err := b.Build(b.Seq(ch, loop))
	if err != nil {
		t.Fatal(err)
	}
	var split, loopEnd string
	for _, n := range schema.Nodes() {
		switch n.Type {
		case adept2.NodeXORSplit:
			split = n.ID
		case adept2.NodeLoopEnd:
			loopEnd = n.ID
		}
	}
	sys := adept2.New(adept2.WithOrg(sim.Org()))
	if err := sys.Deploy(schema); err != nil {
		t.Fatal(err)
	}
	inst, err := sys.CreateInstance("flow")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.CompleteWithDecision(inst.ID(), split, "", nil, 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.Complete(inst.ID(), "y", "ann", nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.Complete(inst.ID(), "w", "ann", nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.CompleteLoop(inst.ID(), loopEnd, "", nil, true); err != nil {
		t.Fatal(err)
	}
	if err := sys.Complete(inst.ID(), "w", "ann", nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.CompleteLoop(inst.ID(), loopEnd, "", nil, false); err != nil {
		t.Fatal(err)
	}
	if !inst.Done() {
		t.Fatal("instance should be done")
	}
	if inst.LoopIterations(loopEnd) != 1 {
		t.Fatalf("loop iterations = %d", inst.LoopIterations(loopEnd))
	}
}
