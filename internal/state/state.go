// Package state implements ADEPT2 instance markings and their evaluation
// rules. A marking assigns every node a NodeState (NotActivated, Activated,
// Running, Completed, Skipped) and every edge an EdgeState (NotSignaled,
// TrueSignaled, FalseSignaled) — the state model visible in Fig. 1 of the
// paper ("completed", "activated", "running", "TRUE signaled", and the
// "Disabled" state which this implementation calls Skipped).
//
// Evaluate propagates markings by edge-driven incremental propagation: the
// marking tracks which nodes had an incoming edge signaled (or were
// themselves demoted) since the last evaluation, and Evaluate re-examines
// only that affected region, cascading through skips — O(affected) per
// event instead of a global fixpoint over all nodes. The same rules run
// during normal execution, after ad-hoc changes, and during migration
// state adaptation, which is what makes automatic state adaptation
// possible. The historical global fixpoint is retained (unexported) as the
// reference implementation that property tests compare against.
package state

import (
	"fmt"
	"sort"

	"adept2/internal/model"
)

// NodeState is the execution state of a node within one instance.
type NodeState uint8

const (
	// NotActivated: the node has not become executable yet.
	NotActivated NodeState = iota
	// Activated: all predecessors are satisfied; work items are offered.
	Activated
	// Running: a user or the system has started the node.
	Running
	// Completed: the node finished; outgoing edges are signaled.
	Completed
	// Skipped: the node lies on a dead path and will never execute
	// (the paper's "Disabled").
	Skipped
)

var nodeStateNames = [...]string{
	NotActivated: "not-activated",
	Activated:    "activated",
	Running:      "running",
	Completed:    "completed",
	Skipped:      "skipped",
}

func (s NodeState) String() string {
	if int(s) < len(nodeStateNames) {
		return nodeStateNames[s]
	}
	return fmt.Sprintf("node-state(%d)", uint8(s))
}

// Started reports whether the node has entered execution (running or
// completed). Fast compliance conditions are phrased in terms of this
// predicate.
func (s NodeState) Started() bool { return s == Running || s == Completed }

// EdgeState is the signaling state of an edge within one instance.
type EdgeState uint8

const (
	// NotSignaled: the source has not finished yet.
	NotSignaled EdgeState = iota
	// TrueSignaled: the source completed and selected this edge.
	TrueSignaled
	// FalseSignaled: the edge lies on a dead path.
	FalseSignaled
)

var edgeStateNames = [...]string{
	NotSignaled:   "not-signaled",
	TrueSignaled:  "true-signaled",
	FalseSignaled: "false-signaled",
}

func (s EdgeState) String() string {
	if int(s) < len(edgeStateNames) {
		return edgeStateNames[s]
	}
	return fmt.Sprintf("edge-state(%d)", uint8(s))
}

// Marking is the complete execution state of one process instance over its
// schema view. The zero state of every node is NotActivated and of every
// edge NotSignaled; the maps only hold non-zero entries, so an unbiased,
// freshly created instance costs almost no memory (the redundancy-free
// representation of Fig. 2).
//
// The marking additionally maintains the evaluation worklist: every edge
// signal records its target node and every demotion to NotActivated
// records the node itself as pending re-examination. Evaluate consumes the
// worklist; between mutations and the next Evaluate call the marking is at
// a fixpoint for all nodes NOT on the worklist.
type Marking struct {
	nodes map[string]NodeState
	edges map[model.EdgeKey]EdgeState

	// skipSeq records, per skipped node, the event sequence number of the
	// action that caused the skip. The fast compliance condition for sync
	// edge insertion needs it ("was the source definitely dead before the
	// target started?").
	skipSeq map[string]int

	// pending is the evaluation worklist: nodes whose activation/skip
	// question may have a new answer. pendingSet deduplicates it.
	pending    []string
	pendingSet map[string]bool
}

// NewMarking returns an empty marking (everything not activated).
func NewMarking() *Marking {
	return &Marking{
		nodes:      make(map[string]NodeState),
		edges:      make(map[model.EdgeKey]EdgeState),
		skipSeq:    make(map[string]int),
		pendingSet: make(map[string]bool),
	}
}

// markPending queues a node for re-examination by the next Evaluate.
func (m *Marking) markPending(id string) {
	if !m.pendingSet[id] {
		m.pendingSet[id] = true
		m.pending = append(m.pending, id)
	}
}

// clearPending empties the evaluation worklist (a full evaluation pass
// answered every open question).
func (m *Marking) clearPending() {
	m.pending = m.pending[:0]
	clear(m.pendingSet)
}

// Node returns the state of a node.
func (m *Marking) Node(id string) NodeState { return m.nodes[id] }

// Edge returns the state of an edge.
func (m *Marking) Edge(k model.EdgeKey) EdgeState { return m.edges[k] }

// SetNode sets a node state directly. Callers outside this package should
// prefer the Start/Complete/Evaluate entry points. Demoting a node to
// NotActivated queues it for re-examination.
func (m *Marking) SetNode(id string, s NodeState) {
	if m.nodes[id] == s {
		return
	}
	if s == NotActivated {
		delete(m.nodes, id)
		m.markPending(id)
		return
	}
	m.nodes[id] = s
}

// SetEdge sets an edge state directly. Any state change queues the edge's
// target node for re-examination.
func (m *Marking) SetEdge(k model.EdgeKey, s EdgeState) {
	if m.edges[k] == s {
		return
	}
	if s == NotSignaled {
		delete(m.edges, k)
	} else {
		m.edges[k] = s
	}
	m.markPending(k.To)
}

// SkipSeq returns the event sequence number at which the node was skipped
// (0 if the node is not skipped).
func (m *Marking) SkipSeq(id string) int { return m.skipSeq[id] }

// NodesInState returns the IDs of all nodes currently in the given state,
// sorted for determinism. NotActivated is not enumerable (it is the
// default state).
func (m *Marking) NodesInState(s NodeState) []string {
	var ids []string
	for id, ns := range m.nodes {
		if ns == s {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// Clone returns a deep copy of the marking, including the pending
// evaluation worklist.
func (m *Marking) Clone() *Marking {
	c := NewMarking()
	for id, s := range m.nodes {
		c.nodes[id] = s
	}
	for k, s := range m.edges {
		c.edges[k] = s
	}
	for id, q := range m.skipSeq {
		c.skipSeq[id] = q
	}
	c.pending = append(c.pending, m.pending...)
	for id := range m.pendingSet {
		c.pendingSet[id] = true
	}
	return c
}

// CountNodes returns the number of nodes holding a non-default state; it
// feeds the storage footprint accounting of the Fig. 2 experiment.
func (m *Marking) CountNodes() int { return len(m.nodes) }

// ApproxBytes estimates the memory held by the marking.
func (m *Marking) ApproxBytes() int {
	total := 0
	for id := range m.nodes {
		total += len(id) + 17
	}
	for k := range m.edges {
		total += len(k.From) + len(k.To) + 18
	}
	for id := range m.skipSeq {
		total += len(id) + 24
	}
	return total
}

// Init marks the start node of the view completed and signals its outgoing
// edges — the state of a freshly created instance before the first
// Evaluate pass.
func (m *Marking) Init(v model.SchemaView) {
	start := v.StartID()
	if start == "" {
		return
	}
	m.SetNode(start, Completed)
	for _, e := range v.OutEdges(start) {
		if e.Type != model.EdgeLoop {
			m.SetEdge(e.Key(), TrueSignaled)
		}
	}
}

// Start transitions an activated node to running.
func (m *Marking) Start(id string) error {
	if got := m.Node(id); got != Activated {
		return fmt.Errorf("state: start %q: node is %s, not activated", id, got)
	}
	m.SetNode(id, Running)
	return nil
}

// Complete transitions a running node to completed and signals its
// outgoing control and sync edges. For an XOR split, decision selects the
// outgoing control edge code; all other edges are false-signaled. Loop
// edges are never signaled here: loop iteration is performed by ResetLoop.
func (m *Marking) Complete(v model.SchemaView, id string, decision int) error {
	if got := m.Node(id); got != Running {
		return fmt.Errorf("state: complete %q: node is %s, not running", id, got)
	}
	topo := v.Topology()
	nt := topo.Of(id)
	if nt == nil {
		return fmt.Errorf("state: complete %q: node not in schema", id)
	}
	m.SetNode(id, Completed)
	for _, e := range nt.OutControl {
		if nt.Node.Type == model.NodeXORSplit && e.Code != decision {
			m.SetEdge(e.Key(), FalseSignaled)
		} else {
			m.SetEdge(e.Key(), TrueSignaled)
		}
	}
	for _, e := range nt.OutSync {
		m.SetEdge(e.Key(), TrueSignaled)
	}
	return nil
}

// skip marks a node dead and false-signals everything leaving it.
func (m *Marking) skip(nt *model.NodeTopology, id string, seq int) {
	m.SetNode(id, Skipped)
	if _, dup := m.skipSeq[id]; !dup {
		m.skipSeq[id] = seq
	}
	for _, e := range nt.OutControl {
		m.SetEdge(e.Key(), FalseSignaled)
	}
	for _, e := range nt.OutSync {
		m.SetEdge(e.Key(), FalseSignaled)
	}
}

// Evaluator propagates a marking over one fixed schema view. It snapshots
// the view's topology index once, so repeated evaluations (e.g. one per
// replayed history event) share the index without re-fetching it. An
// Evaluator is invalidated by structural changes to the view — create a
// new one after an ad-hoc change or migration.
type Evaluator struct {
	v    model.SchemaView
	topo *model.Topology
	m    *Marking
}

// NewEvaluator returns an incremental evaluator for the view/marking pair.
func NewEvaluator(v model.SchemaView, m *Marking) *Evaluator {
	return &Evaluator{v: v, topo: v.Topology(), m: m}
}

// Evaluate drains the marking's pending worklist (see Evaluate).
func (ev *Evaluator) Evaluate(seq int) []string {
	return propagate(ev.topo, ev.m, seq)
}

// Evaluate propagates the marking across the affected region: every node
// with a newly signaled incoming edge (or demoted by ResetLoop/Adapt) is
// re-examined; nodes whose incoming control edges are all true-signaled
// and whose incoming sync edges are all signaled become Activated; nodes
// on dead paths become Skipped, which cascades to their successors. seq
// stamps newly skipped nodes (see SkipSeq). It returns the IDs of newly
// activated nodes in view order.
func Evaluate(v model.SchemaView, m *Marking, seq int) []string {
	return propagate(v.Topology(), m, seq)
}

// propagate is the incremental evaluation core: it processes the marking's
// pending worklist until empty. Skips triggered while draining re-queue
// their successors, so the propagation covers exactly the affected region.
func propagate(topo *model.Topology, m *Marking, seq int) []string {
	var activated []string
	for i := 0; i < len(m.pending); i++ {
		id := m.pending[i]
		delete(m.pendingSet, id) // a later signal must be able to re-queue
		if m.Node(id) != NotActivated {
			continue
		}
		nt := topo.Of(id)
		if nt == nil {
			continue // node not in this view (stale after a change)
		}
		n := nt.Node
		if n.Type == model.NodeStart {
			continue
		}
		inC := nt.InControl
		if len(inC) == 0 {
			continue // disconnected; verifier rejects such schemas
		}
		trueC, falseC := 0, 0
		for _, e := range inC {
			switch m.Edge(e.Key()) {
			case TrueSignaled:
				trueC++
			case FalseSignaled:
				falseC++
			}
		}
		syncReady := true
		for _, e := range nt.InSync {
			if m.Edge(e.Key()) == NotSignaled {
				syncReady = false
				break
			}
		}

		switch n.Type {
		case model.NodeXORJoin:
			switch {
			case trueC == 1 && trueC+falseC == len(inC) && syncReady:
				m.SetNode(id, Activated)
				activated = append(activated, id)
			case falseC == len(inC):
				m.skip(nt, id, seq)
			}
		case model.NodeANDJoin:
			switch {
			case trueC == len(inC) && syncReady:
				m.SetNode(id, Activated)
				activated = append(activated, id)
			case falseC == len(inC):
				m.skip(nt, id, seq)
			}
		default:
			// Single incoming control edge (activities, splits, loop
			// start/end, end node).
			switch {
			case trueC == len(inC) && syncReady:
				m.SetNode(id, Activated)
				activated = append(activated, id)
			case falseC > 0:
				m.skip(nt, id, seq)
			}
		}
	}
	m.pending = m.pending[:0]
	if len(activated) > 1 {
		sort.Slice(activated, func(i, j int) bool {
			return topo.Of(activated[i]).Index < topo.Of(activated[j]).Index
		})
	}
	return activated
}

// evaluateFixpoint is the historical global-fixpoint evaluator: it rescans
// every node of the view until quiescence. It is retained purely as the
// reference implementation for property tests, which assert that the
// incremental propagation produces marking-for-marking identical results.
// A full pass answers every open question, so the pending worklist is
// cleared afterwards.
func evaluateFixpoint(v model.SchemaView, m *Marking, seq int) []string {
	var activated []string
	for {
		changed := false
		for _, id := range v.NodeIDs() {
			if m.Node(id) != NotActivated {
				continue
			}
			n, _ := v.Node(id)
			if n.Type == model.NodeStart {
				continue
			}
			inC := model.InControlEdges(v, id)
			if len(inC) == 0 {
				continue
			}
			trueC, falseC := 0, 0
			for _, e := range inC {
				switch m.Edge(e.Key()) {
				case TrueSignaled:
					trueC++
				case FalseSignaled:
					falseC++
				}
			}
			syncReady := true
			for _, e := range v.InEdges(id) {
				if e.Type == model.EdgeSync && m.Edge(e.Key()) == NotSignaled {
					syncReady = false
					break
				}
			}

			skipRef := func() {
				m.SetNode(id, Skipped)
				if _, dup := m.skipSeq[id]; !dup {
					m.skipSeq[id] = seq
				}
				for _, e := range v.OutEdges(id) {
					if e.Type == model.EdgeLoop {
						continue
					}
					m.SetEdge(e.Key(), FalseSignaled)
				}
			}

			switch n.Type {
			case model.NodeXORJoin:
				switch {
				case trueC == 1 && trueC+falseC == len(inC) && syncReady:
					m.SetNode(id, Activated)
					activated = append(activated, id)
					changed = true
				case falseC == len(inC):
					skipRef()
					changed = true
				}
			case model.NodeANDJoin:
				switch {
				case trueC == len(inC) && syncReady:
					m.SetNode(id, Activated)
					activated = append(activated, id)
					changed = true
				case falseC == len(inC):
					skipRef()
					changed = true
				}
			default:
				switch {
				case trueC == len(inC) && syncReady:
					m.SetNode(id, Activated)
					activated = append(activated, id)
					changed = true
				case falseC > 0:
					skipRef()
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	m.clearPending()
	return activated
}

// adaptCore rewinds the derivable parts of the marking against the (possibly
// changed) view: derived node states are demoted, stale states of deleted
// nodes dropped, and all edge signals re-derived from the completed
// frontier. The subsequent evaluation pass — incremental in Adapt, the
// global fixpoint in the test reference — turns the result back into a
// complete marking.
func adaptCore(v model.SchemaView, m *Marking, decisions map[string]int) {
	topo := v.Topology()
	// Demote derived states; keep started nodes. The demotions queue every
	// affected node for re-examination.
	for _, id := range v.NodeIDs() {
		switch m.Node(id) {
		case Activated, Skipped:
			m.SetNode(id, NotActivated)
		}
	}
	// Drop states of nodes no longer present in the view (deleted by the
	// change; compliance guarantees they never started).
	for id := range m.nodes {
		if topo.Of(id) == nil {
			delete(m.nodes, id)
			delete(m.skipSeq, id)
		}
	}
	// All edge signals are re-derived; the re-signaling below queues every
	// target whose inputs change.
	clear(m.edges)
	m.Init(v)
	start := v.StartID()
	for _, id := range v.NodeIDs() {
		if m.Node(id) != Completed || id == start {
			continue
		}
		nt := topo.Of(id)
		for _, e := range nt.OutControl {
			if nt.Node.Type == model.NodeXORSplit && e.Code != decisions[id] {
				m.SetEdge(e.Key(), FalseSignaled)
			} else {
				m.SetEdge(e.Key(), TrueSignaled)
			}
		}
		for _, e := range nt.OutSync {
			m.SetEdge(e.Key(), TrueSignaled)
		}
	}
}

// Adapt recomputes the marking after the underlying schema view changed
// (ad-hoc change or migration): the efficient state adaptation procedure
// the paper refers to for migrating instances. States of started nodes
// (Running, Completed) are preserved; everything derivable — activations,
// skips, edge signals — is recomputed from the completed frontier.
//
// decisions supplies the selection code of every completed XOR split
// (taken from the execution history) so dead paths re-derive identically.
// Skip stamps of nodes that remain skipped are preserved. Returns the
// nodes activated after adaptation, in view order.
func Adapt(v model.SchemaView, m *Marking, decisions map[string]int, seq int) []string {
	adaptCore(v, m, decisions)
	activated := Evaluate(v, m, seq)
	// Prune stale skip stamps (Evaluate preserved stamps of re-skipped
	// nodes).
	for id := range m.skipSeq {
		if m.Node(id) != Skipped {
			delete(m.skipSeq, id)
		}
	}
	return activated
}

// ResetLoop rewinds a loop body for the next iteration: every node in the
// region (including the loop start and loop end) returns to NotActivated
// and every edge between region nodes to NotSignaled. The loop start's
// incoming control edge from outside the region remains true-signaled, so
// the next Evaluate pass re-activates the loop start.
func ResetLoop(v model.SchemaView, m *Marking, region map[string]bool) {
	topo := v.Topology()
	for id := range region {
		m.SetNode(id, NotActivated)
		delete(m.skipSeq, id)
		nt := topo.Of(id)
		if nt == nil {
			continue
		}
		for _, e := range nt.OutControl {
			if region[e.To] {
				m.SetEdge(e.Key(), NotSignaled)
			}
		}
		for _, e := range nt.OutSync {
			if region[e.To] {
				m.SetEdge(e.Key(), NotSignaled)
			}
		}
		for _, e := range nt.OutLoop {
			if region[e.To] {
				m.SetEdge(e.Key(), NotSignaled)
			}
		}
	}
}
