package state

import (
	"math/rand"
	"testing"
	"testing/quick"

	"adept2/internal/model"
)

// genRun builds a random schema and a random partial execution of it,
// returning the view and the marking.
func genRun(rng *rand.Rand) (model.SchemaView, *Marking, map[string]int) {
	b := model.NewBuilder("p")
	var n int
	var frag func(depth int) model.Fragment
	frag = func(depth int) model.Fragment {
		if depth <= 0 || rng.Float64() < 0.55 {
			n++
			return b.Activity(actID(n), "A", model.WithRole("r"))
		}
		if rng.Intn(2) == 0 {
			return b.Parallel(frag(depth-1), frag(depth-1))
		}
		return b.Choice("", frag(depth-1), frag(depth-1))
	}
	s, err := b.Build(b.Seq(frag(3)))
	if err != nil {
		panic(err)
	}
	m := NewMarking(s)
	m.Init(s)
	Evaluate(s, m, 1)
	decisions := map[string]int{}
	// Random partial run: repeatedly pick an activated node and complete
	// it (choosing random XOR branches).
	for step := 0; step < 30; step++ {
		enabled := m.NodesInState(Activated)
		if len(enabled) == 0 {
			break
		}
		id := enabled[rng.Intn(len(enabled))]
		if m.Start(id) != nil {
			break
		}
		node, _ := s.Node(id)
		dec := -1
		if node.Type == model.NodeXORSplit {
			outs := model.OutControlEdges(s, id)
			dec = outs[rng.Intn(len(outs))].Code
			decisions[id] = dec
		}
		if m.Complete(s, id, dec) != nil {
			break
		}
		Evaluate(s, m, step+2)
	}
	return s, m, decisions
}

func actID(n int) string {
	digits := []byte("0123456789")
	out := []byte{'a'}
	if n == 0 {
		return "a0"
	}
	var buf []byte
	for n > 0 {
		buf = append([]byte{digits[n%10]}, buf...)
		n /= 10
	}
	return string(append(out, buf...))
}

// TestEvaluateIdempotent: a second Evaluate pass never changes anything
// (the rules reach a true fixpoint).
func TestEvaluateIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		v, m, _ := genRun(rand.New(rand.NewSource(seed)))
		before := m.Clone()
		Evaluate(v, m, 99)
		return markingsEqual(v, before, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestAdaptIsIdentityWithoutChange: adapting a marking against its own
// unchanged schema reproduces the marking exactly.
func TestAdaptIsIdentityWithoutChange(t *testing.T) {
	f := func(seed int64) bool {
		v, m, decisions := genRun(rand.New(rand.NewSource(seed)))
		before := m.Clone()
		Adapt(v, m, decisions, 100)
		return markingsEqual(v, before, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestMarkingInvariants: structural sanity of every reachable marking —
// an activated or started node has no false-signaled incoming control
// edge; a skipped node never has started successors on dead edges that
// carry true signals, and exactly one outgoing control edge of a
// completed XOR split is true-signaled.
func TestMarkingInvariants(t *testing.T) {
	f := func(seed int64) bool {
		v, m, _ := genRun(rand.New(rand.NewSource(seed)))
		for _, id := range v.NodeIDs() {
			n, _ := v.Node(id)
			st := m.Node(id)
			if st == Activated || st == Running || st == Completed {
				if n.Type != model.NodeXORJoin && n.Type != model.NodeStart {
					for _, e := range model.InControlEdges(v, id) {
						if m.Edge(e.Key()) == FalseSignaled {
							return false
						}
					}
				}
			}
			if n.Type == model.NodeXORSplit && st == Completed {
				trueCnt := 0
				for _, e := range model.OutControlEdges(v, id) {
					if m.Edge(e.Key()) == TrueSignaled {
						trueCnt++
					}
				}
				if trueCnt != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func markingsEqual(v model.SchemaView, a, b *Marking) bool {
	for _, id := range v.NodeIDs() {
		if a.Node(id) != b.Node(id) {
			return false
		}
	}
	for _, e := range v.Edges() {
		if a.Edge(e.Key()) != b.Edge(e.Key()) {
			return false
		}
	}
	return true
}
