package persist

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestJournalAppendAndRead(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	if err := j.Append("create", map[string]any{"type": "order"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append("complete", map[string]any{"node": "a"}); err != nil {
		t.Fatal(err)
	}
	if j.Seq() != 2 {
		t.Fatalf("seq = %d", j.Seq())
	}
	recs, err := ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Op != "create" || recs[1].Seq != 2 {
		t.Fatalf("records = %+v", recs)
	}
}

func TestJournalToleratesTornTail(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	if err := j.Append("create", nil); err != nil {
		t.Fatal(err)
	}
	buf.WriteString(`{"seq":2,"op":"comp`) // torn write, no newline... then EOF
	recs, err := ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("torn tail must be tolerated: %v", err)
	}
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
}

func TestJournalRejectsMidCorruption(t *testing.T) {
	data := `{"seq":1,"op":"a","args":null}
garbage
{"seq":2,"op":"b","args":null}
`
	if _, err := ReadJournal(strings.NewReader(data)); err == nil {
		t.Fatal("mid-journal corruption must be rejected")
	}
}

func TestJournalRejectsGaps(t *testing.T) {
	data := `{"seq":1,"op":"a","args":null}
{"seq":3,"op":"b","args":null}
`
	if _, err := ReadJournal(strings.NewReader(data)); err == nil || !strings.Contains(err.Error(), "gap") {
		t.Fatalf("expected gap error, got %v", err)
	}
}

func TestFileJournalReopenContinuesSeq(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.ndjson")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.SetSync(false)
	if err := j.Append("a", 1); err != nil {
		t.Fatal(err)
	}
	if err := j.Append("b", 2); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Append("c", 3); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[2].Seq != 3 || recs[2].Op != "c" {
		t.Fatalf("records = %+v", recs)
	}
}

func TestLoadJournalMissingFile(t *testing.T) {
	recs, err := LoadJournal(filepath.Join(t.TempDir(), "absent.ndjson"))
	if err != nil || recs != nil {
		t.Fatalf("missing file: recs=%v err=%v", recs, err)
	}
}

func TestReplayStopsOnError(t *testing.T) {
	recs := []Record{
		{Seq: 1, Op: "ok", Args: json.RawMessage(`null`)},
		{Seq: 2, Op: "boom", Args: json.RawMessage(`null`)},
		{Seq: 3, Op: "ok", Args: json.RawMessage(`null`)},
	}
	var applied []string
	err := Replay(recs, func(op string, _ json.RawMessage) error {
		applied = append(applied, op)
		if op == "boom" {
			return os.ErrInvalid
		}
		return nil
	})
	if err == nil || len(applied) != 2 {
		t.Fatalf("applied=%v err=%v", applied, err)
	}
}

func TestAppendMarshalsErrors(t *testing.T) {
	j := NewJournal(&bytes.Buffer{})
	if err := j.Append("bad", func() {}); err == nil {
		t.Fatal("unmarshalable args must fail")
	}
}
