// Package vfs abstracts the filesystem operations of the durability
// stack behind a small interface so fault-injection and crash-simulation
// backends can stand in for the real OS. See doc.go for the fault
// schedule semantics and the crash model.
package vfs

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"sync/atomic"
)

// FS is the filesystem surface the durability stack consumes. Paths are
// plain OS paths (the OS backend passes them through; MemFS cleans
// them). Implementations must return *fs.PathError values wrapping
// fs.ErrNotExist / fs.ErrExist where the os package would, so callers'
// os.IsNotExist checks keep working.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics for the flag subset
	// the stack uses: O_RDONLY, O_RDWR, O_CREATE, O_EXCL, O_APPEND,
	// O_TRUNC.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// Rename moves oldname to newname, replacing newname if it exists.
	Rename(oldname, newname string) error
	// Remove deletes a file (or empty directory).
	Remove(name string) error
	// RemoveAll deletes a subtree; a missing root is not an error.
	RemoveAll(path string) error
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(path string, perm fs.FileMode) error
	// ReadDir lists a directory, sorted by name.
	ReadDir(name string) ([]fs.DirEntry, error)
	// Stat describes a file or directory.
	Stat(name string) (fs.FileInfo, error)
	// SyncDir fsyncs a directory, making entry operations (create,
	// rename, remove) in it durable.
	SyncDir(dir string) error
}

// File is one open file of an FS. Reads are sequential from the handle's
// offset; writes go to the handle's offset, or to the end of the file
// for handles opened with O_APPEND (the only write mode the journal
// uses).
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync fsyncs the file contents.
	Sync() error
	// Truncate cuts (or extends) the file to size bytes.
	Truncate(size int64) error
	// Stat describes the file.
	Stat() (fs.FileInfo, error)
	// Name returns the path the file was opened as.
	Name() string
}

// Open opens name read-only.
func Open(fsys FS, name string) (File, error) {
	return fsys.OpenFile(name, os.O_RDONLY, 0)
}

// ReadFile reads the whole content of name.
func ReadFile(fsys FS, name string) ([]byte, error) {
	f, err := Open(fsys, name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// tempSeq distinguishes concurrent CreateTemp calls; the per-process
// counter plus O_EXCL gives unique names without randomness.
var tempSeq atomic.Int64

// CreateTemp creates a new file in dir with a unique name derived from
// prefix (mirroring os.CreateTemp's contract for the "prefix*" pattern:
// a unique suffix replaces the trailing '*', or is appended when the
// pattern has none).
func CreateTemp(fsys FS, dir, pattern string) (File, error) {
	prefix, suffix := pattern, ""
	for i := len(pattern) - 1; i >= 0; i-- {
		if pattern[i] == '*' {
			prefix, suffix = pattern[:i], pattern[i+1:]
			break
		}
	}
	for try := 0; try < 10000; try++ {
		name := fmt.Sprintf("%s%d%s", prefix, tempSeq.Add(1), suffix)
		f, err := fsys.OpenFile(joinPath(dir, name), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
		if os.IsExist(err) {
			continue
		}
		return f, err
	}
	return nil, &fs.PathError{Op: "createtemp", Path: dir, Err: fs.ErrExist}
}

// joinPath is filepath.Join without the import cycle noise in this file.
func joinPath(dir, name string) string {
	if dir == "" {
		return name
	}
	if dir[len(dir)-1] == '/' {
		return dir + name
	}
	return dir + "/" + name
}

// osFS is the passthrough OS backend.
type osFS struct{}

// OS returns the passthrough backend over the real filesystem.
func OS() FS { return osFS{} }

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) RemoveAll(path string) error          { return os.RemoveAll(path) }
func (osFS) MkdirAll(path string, perm fs.FileMode) error {
	return os.MkdirAll(path, perm)
}
func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
func (osFS) Stat(name string) (fs.FileInfo, error)      { return os.Stat(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
