// Package model defines the ADEPT2 process meta model: block-structured
// process schemas (WSM nets) consisting of activity and gateway nodes,
// control edges, sync edges (cross-branch ordering constraints inside
// parallel blocks), loop edges, and explicit data flow (typed data elements
// connected to activities through read/write data edges).
//
// A Schema is the buildtime artifact. All consumers (the verifier, the
// execution engine, the change framework, the compliance checker) operate
// on the read-only SchemaView interface so that biased instances can
// substitute an overlay view (see internal/storage) without materializing
// a full per-instance schema copy — the hybrid representation of Fig. 2 of
// the ADEPT2 paper.
package model
