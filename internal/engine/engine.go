// Package engine implements the ADEPT2 runtime: it deploys verified
// schemas, creates and drives process instances, maintains markings,
// execution histories, data stores and worklists, and exposes the
// controlled mutation entry points the change framework and the migration
// manager build on.
//
// The engine never interprets change operations itself — it only knows the
// BiasOp interface — so the package order stays strictly layered:
// model/graph/verify/state/history/data/org/worklist → engine →
// change/compliance → evolution.
package engine

import (
	"fmt"
	"sort"
	"sync"

	"adept2/internal/fault"
	"adept2/internal/graph"
	"adept2/internal/model"
	"adept2/internal/org"
	"adept2/internal/storage"
	"adept2/internal/verify"
	"adept2/internal/worklist"
)

// BiasOp is the engine's view of an instance-specific change operation.
// The concrete operations live in internal/change; the engine only needs
// to re-apply them when it materializes on-the-fly views and to report
// them.
type BiasOp interface {
	// OpName identifies the operation kind (e.g. "serial-insert").
	OpName() string
	// ApplyTo applies the operation to a mutable schema view.
	ApplyTo(v model.MutableView) error
	// String renders the operation for reports.
	String() string
}

type schemaKey struct {
	typeName string
	version  int
}

// Engine is the process management runtime. All methods are safe for
// concurrent use.
type Engine struct {
	mu      sync.RWMutex
	org     *org.Model
	wl      *worklist.Manager
	schemas map[schemaKey]*model.Schema
	latest  map[string]int
	insts   map[string]*Instance
	order   []string
	// orderPos maps instance ID -> index in order, so paginated reads
	// resolve a cursor in O(1) instead of scanning the creation order.
	orderPos map[string]int
	nextID   int
	blocks   map[*model.Schema]*graph.Info

	strategy storage.Strategy

	// bothCanAct keeps the original role's offer alongside the
	// escalation role's when a deadline fires (default: escalation
	// replaces the offer). Set before any replay so escalations
	// reproduce identical worklists on recovery.
	bothCanAct bool
}

// New creates an engine. A nil org model is replaced by an empty one.
func New(o *org.Model) *Engine {
	if o == nil {
		o = org.NewModel()
	}
	return &Engine{
		org:      o,
		wl:       worklist.NewManager(),
		schemas:  make(map[schemaKey]*model.Schema),
		latest:   make(map[string]int),
		insts:    make(map[string]*Instance),
		orderPos: make(map[string]int),
		blocks:   make(map[*model.Schema]*graph.Info),
		strategy: storage.Hybrid,
	}
}

// Org returns the organizational model.
func (e *Engine) Org() *org.Model { return e.org }

// Worklist returns the worklist manager.
func (e *Engine) Worklist() *worklist.Manager { return e.wl }

// SetStorageStrategy selects how biased instances represent their
// instance-specific schema (default storage.Hybrid). It applies to
// instances biased after the call; the Fig. 2 experiments switch it
// between runs.
func (e *Engine) SetStorageStrategy(s storage.Strategy) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.strategy = s
}

// StorageStrategy returns the active strategy.
func (e *Engine) StorageStrategy() storage.Strategy {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.strategy
}

// SetEscalationBothCanAct selects both-can-act escalation semantics:
// when a deadline fires, the work item is offered to the union of the
// escalation role's and the original role's users instead of the
// escalation role replacing the offer. Like the storage strategy, the
// facade sets it at construction — before any replay — so recovered
// escalations offer to the identical user set.
func (e *Engine) SetEscalationBothCanAct(on bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.bothCanAct = on
}

// EscalationBothCanAct returns the active escalation semantics.
func (e *Engine) EscalationBothCanAct() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.bothCanAct
}

// Deploy verifies and registers a schema version. A schema with
// error-severity findings is rejected; the version must be strictly newer
// than any deployed version of the same type.
func (e *Engine) Deploy(s *model.Schema) error {
	if err := verify.Err(s); err != nil {
		return fault.Tagf(fault.Invalid, "engine: deploy %s v%d: %w", s.TypeName(), s.Version(), err)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	key := schemaKey{s.TypeName(), s.Version()}
	if _, dup := e.schemas[key]; dup {
		return fault.Tagf(fault.VersionSkew, "engine: deploy %s v%d: version already deployed", s.TypeName(), s.Version())
	}
	if s.Version() <= e.latest[s.TypeName()] {
		return fault.Tagf(fault.VersionSkew, "engine: deploy %s v%d: version not newer than latest v%d", s.TypeName(), s.Version(), e.latest[s.TypeName()])
	}
	e.schemas[key] = s
	e.latest[s.TypeName()] = s.Version()
	return nil
}

// Schema returns the deployed schema of a type and version.
func (e *Engine) Schema(typeName string, version int) (*model.Schema, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	s, ok := e.schemas[schemaKey{typeName, version}]
	return s, ok
}

// LatestVersion returns the newest deployed version of a type (0 if the
// type is unknown).
func (e *Engine) LatestVersion(typeName string) int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.latest[typeName]
}

// Types returns all deployed process type names, sorted.
func (e *Engine) Types() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	ts := make([]string, 0, len(e.latest))
	for t := range e.latest {
		ts = append(ts, t)
	}
	sort.Strings(ts)
	return ts
}

// Versions returns the deployed versions of a type in ascending order.
func (e *Engine) Versions(typeName string) []int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var vs []int
	for k := range e.schemas {
		if k.typeName == typeName {
			vs = append(vs, k.version)
		}
	}
	sort.Ints(vs)
	return vs
}

// CreateInstance instantiates a process type. version 0 selects the
// latest deployed version. The new instance immediately executes all
// automatic nodes up to the first user-visible state.
func (e *Engine) CreateInstance(typeName string, version int) (*Instance, error) {
	e.mu.Lock()
	if version == 0 {
		version = e.latest[typeName]
	}
	s, ok := e.schemas[schemaKey{typeName, version}]
	if !ok {
		e.mu.Unlock()
		return nil, fault.Tagf(fault.NotFound, "engine: create instance: no schema %s v%d", typeName, version)
	}
	e.nextID++
	inst := newInstance(e, fmt.Sprintf("inst-%06d", e.nextID), s, e.strategy)
	e.insts[inst.id] = inst
	e.orderPos[inst.id] = len(e.order)
	e.order = append(e.order, inst.id)
	e.mu.Unlock()

	inst.mu.Lock()
	defer inst.mu.Unlock()
	if err := inst.bootstrapLocked(); err != nil {
		return nil, err
	}
	return inst, nil
}

// CreateInstanceID is CreateInstance with a caller-supplied instance ID.
// Sharded journal replay uses it: the create record carries the ID the
// original execution assigned, so recovery reproduces identical IDs even
// when shards replay in a different interleaving than the original
// command stream. An engine-style ID (inst-%06d) advances the counter
// past its numeric suffix so post-recovery creations cannot collide.
func (e *Engine) CreateInstanceID(id, typeName string, version int) (*Instance, error) {
	e.mu.Lock()
	if version == 0 {
		version = e.latest[typeName]
	}
	s, ok := e.schemas[schemaKey{typeName, version}]
	if !ok {
		e.mu.Unlock()
		return nil, fault.Tagf(fault.NotFound, "engine: create instance: no schema %s v%d", typeName, version)
	}
	if _, dup := e.insts[id]; dup {
		e.mu.Unlock()
		return nil, fault.Tagf(fault.Conflict, "engine: create instance: %q already exists", id)
	}
	var n int
	if _, err := fmt.Sscanf(id, "inst-%d", &n); err == nil && n > e.nextID {
		e.nextID = n
	}
	inst := newInstance(e, id, s, e.strategy)
	e.insts[inst.id] = inst
	e.orderPos[inst.id] = len(e.order)
	e.order = append(e.order, inst.id)
	e.mu.Unlock()

	inst.mu.Lock()
	defer inst.mu.Unlock()
	if err := inst.bootstrapLocked(); err != nil {
		return nil, err
	}
	return inst, nil
}

// Instance looks up an instance by ID.
func (e *Engine) Instance(id string) (*Instance, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	inst, ok := e.insts[id]
	return inst, ok
}

// NumInstances returns the live instance count without cloning the
// listing — the metrics-poll read path.
func (e *Engine) NumInstances() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.order)
}

// Instances returns all instances in creation order.
func (e *Engine) Instances() []*Instance {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]*Instance, 0, len(e.order))
	for _, id := range e.order {
		out = append(out, e.insts[id])
	}
	return out
}

// InstancesPage returns up to limit instances in creation order,
// starting after the cursor (the last instance ID of the previous page;
// "" starts from the beginning). It returns the page and the cursor for
// the next call — "" once the listing is exhausted. Unlike Instances it
// copies only one page, so a million-instance engine serves worklist
// browsers without million-entry allocations per request. An unknown
// cursor (e.g. from before a recovery that renumbered nothing — IDs are
// stable — or simply garbage) yields an empty page.
func (e *Engine) InstancesPage(cursor string, limit int) ([]*Instance, string) {
	if limit <= 0 {
		limit = 100
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	start := 0
	if cursor != "" {
		pos, ok := e.orderPos[cursor]
		if !ok {
			return nil, ""
		}
		start = pos + 1
	}
	if start >= len(e.order) {
		return nil, ""
	}
	end := start + limit
	if end > len(e.order) {
		end = len(e.order)
	}
	out := make([]*Instance, 0, end-start)
	for _, id := range e.order[start:end] {
		out = append(out, e.insts[id])
	}
	next := ""
	if end < len(e.order) {
		next = e.order[end-1]
	}
	return out, next
}

// InstancesOf returns the instances of one process type, optionally
// filtered by schema version (version < 0 matches all).
func (e *Engine) InstancesOf(typeName string, version int) []*Instance {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var out []*Instance
	for _, id := range e.order {
		inst := e.insts[id]
		if inst.TypeName() != typeName {
			continue
		}
		if version >= 0 && inst.Version() != version {
			continue
		}
		out = append(out, inst)
	}
	return out
}

// StartActivity starts an activated manual activity on behalf of a user
// without arming a deadline (StartActivityAt with at = 0).
func (e *Engine) StartActivity(instID, node, user string) error {
	return e.StartActivityAt(instID, node, user, 0)
}

// StartActivityAt starts an activated manual activity on behalf of a
// user at the given time (unix nanos): a non-zero at arms the node's
// relative deadline at at + Node.Deadline. Callers journal at on the
// start command, so recovery re-arms the identical absolute deadline.
func (e *Engine) StartActivityAt(instID, node, user string, at int64) error {
	inst, ok := e.Instance(instID)
	if !ok {
		return fault.Tagf(fault.NotFound, "engine: start: unknown instance %q", instID)
	}
	inst.mu.Lock()
	defer inst.mu.Unlock()
	return inst.startLocked(node, user, at)
}

// CompleteActivity completes a running node (starting it first if it was
// only activated), writes its outputs, and advances the instance.
func (e *Engine) CompleteActivity(instID, node, user string, outputs map[string]any, opts ...CompleteOption) error {
	inst, ok := e.Instance(instID)
	if !ok {
		return fault.Tagf(fault.NotFound, "engine: complete: unknown instance %q", instID)
	}
	inst.mu.Lock()
	defer inst.mu.Unlock()
	return inst.completeEntryLocked(node, user, outputs, opts...)
}

// Suspend blocks user operations on an instance (ad-hoc changes and
// migration remain possible; administrators use this to freeze an
// instance while deciding on an intervention).
func (e *Engine) Suspend(instID string) error {
	inst, ok := e.Instance(instID)
	if !ok {
		return fault.Tagf(fault.NotFound, "engine: suspend: unknown instance %q", instID)
	}
	inst.mu.Lock()
	defer inst.mu.Unlock()
	if inst.done {
		return fault.Tagf(fault.Completed, "engine: suspend %s: instance is completed", instID)
	}
	inst.suspended = true
	return nil
}

// Resume re-enables user operations on a suspended instance.
func (e *Engine) Resume(instID string) error {
	inst, ok := e.Instance(instID)
	if !ok {
		return fault.Tagf(fault.NotFound, "engine: resume: unknown instance %q", instID)
	}
	inst.mu.Lock()
	defer inst.mu.Unlock()
	if !inst.suspended {
		return fault.Tagf(fault.Conflict, "engine: resume %s: instance is not suspended", instID)
	}
	inst.suspended = false
	return nil
}

// Claim reserves a work item for a user.
func (e *Engine) Claim(itemID, user string) error { return e.wl.Claim(itemID, user) }

// Release un-claims a work item.
func (e *Engine) Release(itemID, user string) error { return e.wl.Release(itemID, user) }

// WorkItems returns the work items visible to a user.
func (e *Engine) WorkItems(user string) []*worklist.Item { return e.wl.ItemsFor(user) }

// WorkItemsPage returns up to limit of a user's work items ordered by
// item ID, starting after the cursor item ID ("" = beginning), plus the
// next cursor ("" when exhausted).
func (e *Engine) WorkItemsPage(user, cursor string, limit int) ([]*worklist.Item, string) {
	return e.wl.ItemsForPage(user, cursor, limit)
}
