package monitor

import (
	"bytes"
	"strings"
	"testing"

	"adept2/internal/change"
	"adept2/internal/engine"
	"adept2/internal/evolution"
	"adept2/internal/sim"
)

func scenario(t *testing.T) (*engine.Engine, *engine.Instance, *evolution.Report) {
	t.Helper()
	e := engine.New(sim.Org())
	if err := e.Deploy(sim.OnlineOrder()); err != nil {
		t.Fatal(err)
	}
	inst, err := e.CreateInstance("online_order", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.AdvanceOnlineOrderToI1(e, inst); err != nil {
		t.Fatal(err)
	}
	biased, err := e.CreateInstance("online_order", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := change.ApplyAdHoc(biased, sim.OnlineOrderBiasI2()...); err != nil {
		t.Fatal(err)
	}
	mgr := evolution.NewManager(e)
	report, err := mgr.Evolve("online_order", sim.OnlineOrderTypeChange(), evolution.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return e, inst, report
}

func TestRenderSchema(t *testing.T) {
	out := RenderSchema(sim.OnlineOrder())
	for _, want := range []string{"online_order", "get_order", "and-split", "role=clerk", "data flow", "order"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderSchema missing %q:\n%s", want, out)
		}
	}
	// Sync edges and XOR codes render distinctly.
	s2 := sim.OnlineOrder()
	for _, op := range sim.OnlineOrderTypeChange() {
		if err := op.ApplyTo(s2); err != nil {
			t.Fatal(err)
		}
	}
	out2 := RenderSchema(s2)
	if !strings.Contains(out2, "~sync~> confirm_order") {
		t.Errorf("sync edge rendering missing:\n%s", out2)
	}
}

func TestRenderInstanceAndReport(t *testing.T) {
	_, inst, report := scenario(t)
	out := RenderInstance(inst)
	for _, want := range []string{inst.ID(), "v2", "completed", "send_questions"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderInstance missing %q:\n%s", want, out)
		}
	}
	rep := FormatReport(report)
	for _, want := range []string{"v1 -> v2", "migrated", "structural-conflict", "deadlock", "ad-hoc modified"} {
		if !strings.Contains(rep, want) {
			t.Errorf("FormatReport missing %q:\n%s", want, rep)
		}
	}
}

func TestSummarizeWorklists(t *testing.T) {
	e, _, _ := scenario(t)
	out := SummarizeWorklists(e)
	if !strings.Contains(out, "ann:") {
		t.Errorf("worklist summary missing users:\n%s", out)
	}
	empty := engine.New(nil)
	if got := SummarizeWorklists(empty); got != "no work items\n" {
		t.Errorf("empty summary = %q", got)
	}
}

func TestWriteTableAndCSV(t *testing.T) {
	rows := []Row{
		{Label: "hybrid", Values: []string{"123", "4.5"}},
		{Label: "full-copy", Values: []string{"99999", "0.1"}},
	}
	var tbl bytes.Buffer
	WriteTable(&tbl, []string{"strategy", "bytes", "us/op"}, rows)
	lines := strings.Split(strings.TrimSpace(tbl.String()), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[0], "strategy") {
		t.Fatalf("table:\n%s", tbl.String())
	}
	var csv bytes.Buffer
	WriteCSV(&csv, []string{"strategy", "bytes", "us/op"}, rows)
	if !strings.Contains(csv.String(), "hybrid,123,4.5") {
		t.Fatalf("csv:\n%s", csv.String())
	}
}
