package obs

import (
	"math/bits"
	"sync/atomic"
)

// Counter is a monotonic event counter, padded to its own cache line so
// hot counters in adjacent array slots never false-share. The zero value
// is ready to use; all methods are safe for concurrent use and nil-safe
// (a nil *Counter ignores writes and reads zero), so callers on disabled
// paths need no guards.
type Counter struct {
	v atomic.Int64
	_ [120]byte
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current count.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins instantaneous value (queue depth, lag).
// Same padding, concurrency, and nil-safety contract as Counter.
type Gauge struct {
	v atomic.Int64
	_ [120]byte
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by n.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution with power-of-two bucket
// boundaries: observation v lands in bucket bits.Len64(v>>shift), so
// bucket i covers (2^(i-1), 2^i] in units of 2^shift. A latency
// histogram with shift 10 buckets by ~1µs, ~2µs, ~4µs, … — 28 buckets
// reach ~2¼ minutes. Observe is one shift, one bits.Len64, and two-three
// atomic adds: cheap enough for every hot path. Count and Sum are padded;
// the bucket array is shared (bucket contention only matters when many
// cores observe identical values, which the workloads here do not).
//
// The zero value is NOT ready — use NewHistogram. A nil *Histogram
// ignores observations and snapshots empty.
type Histogram struct {
	count   atomic.Int64
	_       [120]byte
	sum     atomic.Int64
	_       [120]byte
	shift   uint
	buckets []atomic.Int64
}

// NewHistogram creates a histogram with n buckets of 2^shift-unit
// power-of-two boundaries. Values past the last boundary clamp into the
// final bucket (it doubles as +Inf).
func NewHistogram(n int, shift uint) *Histogram {
	if n < 2 {
		n = 2
	}
	return &Histogram{shift: shift, buckets: make([]atomic.Int64, n)}
}

// Observe records one value (negative values clamp to zero).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	i := bits.Len64(uint64(v) >> h.shift)
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// UpperBound returns bucket i's inclusive upper boundary in observation
// units (the final bucket returns -1: unbounded).
func (h *Histogram) UpperBound(i int) int64 {
	if i >= len(h.buckets)-1 {
		return -1
	}
	return int64(1) << (uint(i) + h.shift)
}

// HistogramSnapshot is a point-in-time copy of a histogram. Buckets are
// NON-cumulative per-bucket counts aligned with Bounds; Bounds[i] is the
// bucket's inclusive upper boundary in observation units, -1 for the
// final unbounded bucket.
type HistogramSnapshot struct {
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Bounds  []int64 `json:"bounds,omitempty"`
	Buckets []int64 `json:"buckets,omitempty"`
}

// Snapshot copies the histogram. Concurrent observations may tear
// between count and buckets by a few events — fine for monitoring; the
// invariant tests quiesce first. Trailing empty buckets are trimmed
// (the unbounded bucket is kept only when occupied).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	last := -1
	for i := range h.buckets {
		if h.buckets[i].Load() > 0 {
			last = i
		}
	}
	for i := 0; i <= last; i++ {
		s.Bounds = append(s.Bounds, h.UpperBound(i))
		s.Buckets = append(s.Buckets, h.buckets[i].Load())
	}
	return s
}
