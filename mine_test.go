package adept2_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"adept2"
	"adept2/internal/sim"
)

// mineSystem builds an in-memory online-order system on the injected
// test clock.
func mineSystem(t *testing.T, clk *testClock) *adept2.System {
	t.Helper()
	sys := adept2.New(
		adept2.WithOrg(sim.Org()),
		adept2.WithClock(clk.Now),
		adept2.WithExceptionPolicy(adept2.RetryThenSuspend(3, time.Minute)),
	)
	if err := sys.Deploy(sim.OnlineOrder()); err != nil {
		t.Fatal(err)
	}
	return sys
}

// runOrder drives one online-order instance through its full path with
// explicit starts, advancing the clock by step between start and
// completion so every activity records a duration.
func runOrder(t *testing.T, sys *adept2.System, clk *testClock, step time.Duration) string {
	t.Helper()
	inst, err := sys.CreateInstance("online_order")
	if err != nil {
		t.Fatal(err)
	}
	steps := []struct{ node, user string }{
		{"get_order", "ann"}, {"collect_data", "ann"}, {"confirm_order", "dan"},
		{"compose_order", "bob"}, {"pack_goods", "bob"}, {"deliver_goods", "bob"},
	}
	for _, st := range steps {
		if err := sys.Start(inst.ID(), st.node, st.user); err != nil {
			t.Fatalf("start %s: %v", st.node, err)
		}
		clk.advance(step)
		var out map[string]any
		if st.node == "get_order" {
			out = map[string]any{"out": "o-" + inst.ID()}
		}
		if err := sys.Complete(inst.ID(), st.node, st.user, out); err != nil {
			t.Fatalf("complete %s: %v", st.node, err)
		}
	}
	return inst.ID()
}

// TestMineEndToEnd drives a small mixed population — one completed
// order, one failed-and-retried, one biased with the Fig. 1 conflicting
// change — evolves the type, and checks the mined report: variant
// separation, failure/retry concentration on the failing node, duration
// percentiles from the injected clock, and the drift table flagging the
// stranded instance.
func TestMineEndToEnd(t *testing.T) {
	ctx := context.Background()
	clk := newTestClock()
	sys := mineSystem(t, clk)

	done := runOrder(t, sys, clk, 10*time.Second)

	// i2 fails get_order once, retries after the backoff, completes it.
	i2, err := sys.CreateInstance("online_order")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(i2.ID(), "get_order", "ann"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Fail(ctx, i2.ID(), "get_order", "ann", "phone line dead"); err != nil {
		t.Fatal(err)
	}
	clk.advance(2 * time.Minute)
	if _, err := sys.SweepDeadlines(ctx, clk.Now()); err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(i2.ID(), "get_order", "ann"); err != nil {
		t.Fatal(err)
	}
	clk.advance(30 * time.Second)
	if err := sys.Complete(i2.ID(), "get_order", "ann", map[string]any{"out": "o2"}); err != nil {
		t.Fatal(err)
	}

	// i3 completes get_order, then takes the deadlock-causing Fig. 1
	// bias — after ΔT it cannot migrate and strands on v1.
	i3, err := sys.CreateInstance("online_order")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Complete(i3.ID(), "get_order", "cyn", map[string]any{"out": "o3"}); err != nil {
		t.Fatal(err)
	}
	if err := sys.AdHocChange(i3.ID(), sim.OnlineOrderBiasI2()...); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Evolve("online_order", sim.OnlineOrderTypeChange(), adept2.EvolveOptions{}); err != nil {
		t.Fatal(err)
	}

	rep, err := sys.Mine(ctx, adept2.MineOptions{})
	if err != nil {
		t.Fatal(err)
	}

	if rep.Instances != 3 || rep.Done != 1 || rep.Biased != 1 {
		t.Fatalf("population: %d instances, %d done, %d biased", rep.Instances, rep.Done, rep.Biased)
	}
	// i2 and i3 share the short variant (the retry is invisible to the
	// fingerprint — get_order plus the auto-completed AND-split); the
	// completed order is its own.
	if rep.DistinctVariants != 2 || len(rep.Variants) != 2 {
		t.Fatalf("variants: %+v", rep.Variants)
	}
	short, full := rep.Variants[0], rep.Variants[1]
	if short.Count != 2 || short.Path[0] != "get_order" {
		t.Fatalf("top variant: %+v", short)
	}
	if full.Count != 1 || full.Done != 1 || full.Steps <= short.Steps {
		t.Fatalf("completed-order variant: %+v", full)
	}
	if len(rep.HotPaths) != 2 || rep.HotPaths[0].Count != 2 {
		t.Fatalf("hot paths: %+v", rep.HotPaths)
	}

	var get *struct{ failures, retries, completes, durations int64 }
	for _, n := range rep.Nodes {
		if n.Node == "get_order" {
			get = &struct{ failures, retries, completes, durations int64 }{
				n.Failures, n.Retries, n.Completes, n.Durations.Count}
			if n.P50 <= 0 {
				t.Fatalf("get_order p50 = %d, want > 0 (explicit starts are stamped)", n.P50)
			}
		}
	}
	if get == nil || get.failures != 1 || get.retries != 1 || get.completes != 3 {
		t.Fatalf("get_order concentration: %+v", get)
	}
	// Two completions followed explicit stamped starts (the full order
	// and i2's retry); i3 completed over an implicit, unstamped start,
	// which must NOT produce a duration — exactly two observations.
	if get.durations != 2 {
		t.Fatalf("get_order durations: %d, want 2", get.durations)
	}

	// All three instances traversed get_order → AND-split; the top edge
	// must carry the whole population, and the full path contributes the
	// rest.
	if len(rep.Edges) < full.Steps-1 {
		t.Fatalf("edges: %+v", rep.Edges)
	}
	if e := rep.Edges[0]; e.From != "get_order" || e.Count != 3 {
		t.Fatalf("top edge: %+v", e)
	}

	// Drift: latest is v2; the clean one-step instance migrated, the
	// finished order and the conflicting bias did not.
	if len(rep.Drift) != 1 {
		t.Fatalf("drift: %+v", rep.Drift)
	}
	d := rep.Drift[0]
	if d.Type != "online_order" || d.LatestVersion != 2 || d.Instances != 3 {
		t.Fatalf("drift row: %+v", d)
	}
	if d.Biased != 1 || d.Stale < 1 || d.NonCompliant < d.Stale {
		t.Fatalf("drift classification: %+v", d)
	}
	_ = done
}

// TestMineAllocsBounded pins the O(shard batch) allocation contract: a
// scan over a population four times the batch size must allocate far
// fewer objects than one-per-instance — the reduction buffer, the
// visitor closure, and the capped report tables are shared across the
// whole walk.
func TestMineAllocsBounded(t *testing.T) {
	const n = 1024
	sys := adept2.New(adept2.WithOrg(sim.Org()))
	if err := sys.Deploy(sim.OnlineOrder()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		inst, err := sys.CreateInstance("online_order")
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Complete(inst.ID(), "get_order", "ann", map[string]any{"out": fmt.Sprint(i)}); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := sys.Mine(ctx, adept2.MineOptions{BatchSize: 256}); err != nil {
			t.Fatal(err)
		}
	})
	// One variant, seven nodes, a handful of pages: the scan's footprint
	// is the report plus paging, nowhere near one allocation per
	// instance. n/4 is an order of magnitude of headroom.
	if allocs > n/4 {
		t.Fatalf("Mine allocated %.0f objects over %d instances — scan is not O(batch)", allocs, n)
	}
}

// BenchmarkMine measures the streaming scan over a multi-thousand
// instance population (the bench.sh mining figure).
func BenchmarkMine(b *testing.B) {
	const n = 4096
	sys := adept2.New(adept2.WithOrg(sim.Org()))
	if err := sys.Deploy(sim.OnlineOrder()); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		inst, err := sys.CreateInstance("online_order")
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.Complete(inst.ID(), "get_order", "ann", map[string]any{"out": fmt.Sprint(i)}); err != nil {
			b.Fatal(err)
		}
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := sys.Mine(ctx, adept2.MineOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Instances != n {
			b.Fatalf("mined %d instances, want %d", rep.Instances, n)
		}
	}
}
