package compliance_test

import (
	"fmt"
	"math/rand"
	"testing"

	"adept2/internal/change"
	"adept2/internal/compliance"
	"adept2/internal/engine"
	"adept2/internal/graph"
	"adept2/internal/history"
	"adept2/internal/model"
	"adept2/internal/sim"
	"adept2/internal/verify"
)

// TestFastEqualsReplayProperty is the central correctness property of the
// reproduction: for randomized schemas, randomized instance progress, and
// randomized change operations, the O(1) per-operation compliance
// conditions (paper Fig. 1) must return exactly the same verdict as the
// ground-truth history replay.
func TestFastEqualsReplayProperty(t *testing.T) {
	trials := 400
	if testing.Short() {
		trials = 60
	}
	var checked, compliant int
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 1))
		name := fmt.Sprintf("proc%d", trial)
		schema := sim.RandomSchema(rng, name, sim.DefaultSchemaOpts())

		e := engine.New(sim.Org())
		if err := e.Deploy(schema); err != nil {
			t.Fatalf("trial %d: deploy: %v", trial, err)
		}
		inst, err := e.CreateInstance(name, 0)
		if err != nil {
			t.Fatalf("trial %d: create: %v", trial, err)
		}
		driver := sim.NewDriver(rng, e)
		if err := driver.Advance(inst, rng.Intn(25)); err != nil {
			t.Fatalf("trial %d: advance: %v", trial, err)
		}

		ops := sim.RandomAdHocOps(rng, schema, trial)
		if len(ops) == 0 {
			continue
		}
		// Structural gate: the changed schema must verify; otherwise the
		// change is rejected outright and compliance is moot.
		target := schema.Clone()
		target.SetSchemaID(target.SchemaID() + "'")
		if !applyAll(target, ops) {
			continue
		}
		if res := verify.Check(target); !res.OK() {
			continue
		}
		targetInfo, err := graph.Analyze(target)
		if err != nil {
			continue
		}
		baseInfo, err := graph.Analyze(schema)
		if err != nil {
			t.Fatalf("trial %d: base analyze: %v", trial, err)
		}

		fastErr := compliance.CheckFast(fastCtx(inst), ops)
		reduced := history.Reduce(baseInfo, inst.HistoryEvents())
		_, replayErr := compliance.Replay(target, targetInfo, reduced)

		checked++
		if (fastErr == nil) != (replayErr == nil) {
			t.Errorf("trial %d: verdicts disagree for %v\n  fast:   %v\n  replay: %v\n  history: %v",
				trial, opsString(ops), fastErr, replayErr, eventsString(reduced))
			if testing.Verbose() || t.Failed() {
				dumpInstance(t, inst)
			}
			if trial > 0 && t.Failed() && checked > 10 {
				t.FailNow() // stop flooding after a few counterexamples
			}
		}
		if replayErr == nil {
			compliant++
		}
	}
	if checked < trials/4 {
		t.Fatalf("structural gate rejected too many proposals: only %d/%d checked", checked, trials)
	}
	if compliant == 0 || compliant == checked {
		t.Fatalf("degenerate property distribution: %d/%d compliant (need a mix)", compliant, checked)
	}
	t.Logf("property held on %d checked changes (%d compliant, %d conflicts)", checked, compliant, checked-compliant)
}

func applyAll(target *model.Schema, ops []change.Operation) bool {
	for _, op := range ops {
		if err := op.ApplyTo(target); err != nil {
			return false
		}
	}
	return true
}

func opsString(ops []change.Operation) []string {
	out := make([]string, len(ops))
	for i, op := range ops {
		out[i] = op.String()
	}
	return out
}

func eventsString(events []*history.Event) []string {
	out := make([]string, len(events))
	for i, e := range events {
		out[i] = e.String()
	}
	return out
}

func dumpInstance(t *testing.T, inst *engine.Instance) {
	t.Helper()
	m := inst.MarkingSnapshot()
	v := inst.View()
	for _, id := range v.NodeIDs() {
		t.Logf("  node %-16s %s", id, m.Node(id))
	}
}
