// Package soak is the adversarial soak harness for process-level fault
// tolerance: it drives a population of instances through random
// failures, deadline storms, concurrent schema evolutions, ad-hoc
// changes, injected disk faults, crashes, and close→reopen cycles — all
// through the public System command API, never the engine directly, so
// every mutation takes the journaled path — and asserts global
// invariants along the way:
//
//   - no lost work items: every startable activity of a live instance
//     has exactly one work item, and every item maps to such a node;
//   - no wedged instances: every instance is terminal, suspended, or
//     has an activated/running node;
//   - no acknowledged-write loss: a crash never loses a mutation whose
//     Submit returned success;
//   - replay fidelity: closing and reopening the system (snapshot +
//     journal-suffix recovery) reproduces the exact live state,
//     including armed deadlines, retry backoffs, failure counts,
//     escalations, and per-user worklists;
//   - liveness: once faults stop and an administrator resumes suspended
//     instances and releases pending compensations, every instance
//     runs to completion.
//
// # Scenario format
//
// A scenario is a Config value: Seed fixes the PRNG, and every other
// field is a dial on the adversarial mix (population size, step count,
// shard layout, failure probability, deadline storms, evolution/ad-hoc/
// reopen/crash cadences, the retry policy, and the sweep period). The
// zero value of a dial disables that behavior, so a scenario is written
// by starting from DefaultConfig (the full mix) or the zero Config (a
// quiet baseline) and setting dials. `adeptctl sim` exposes the same
// dials as flags. A scenario is deterministic per (Seed, Config): the
// soak uses a logical clock injected via adept2.WithClock and a seeded
// PRNG, runs on an in-memory filesystem wrapped in a vfs.FaultFS, and
// reports a Result whose counters are reproducible run to run.
package soak

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"adept2"
	"adept2/internal/engine"
	"adept2/internal/history"
	"adept2/internal/mining"
	"adept2/internal/model"
	"adept2/internal/obs"
	"adept2/internal/sim"
	"adept2/internal/state"
	"adept2/internal/vfs"
)

// Config parameterizes one soak run. The zero value of any field
// disables the corresponding behavior; DefaultConfig returns the
// full adversarial mix.
type Config struct {
	// Seed seeds the PRNG and thereby the whole scenario.
	Seed int64
	// Instances is the target number of concurrently live instances
	// (new ones are created as others finish).
	Instances int
	// Steps is the number of driver steps (each step is roughly one
	// user action plus any due timer work).
	Steps int
	// Shards selects the sharded durability layout (0/1 = single
	// journal).
	Shards int
	// FailProb is the per-action probability that a running activity
	// reports a failure instead of completing.
	FailProb float64
	// DeadlineStorm periodically jumps the logical clock far ahead, so
	// a whole population of armed deadlines expires into one sweep.
	DeadlineStorm bool
	// EvolveEvery submits a schema evolution (serial insert of a new
	// audit activity) every this many steps (0 = never).
	EvolveEvery int
	// AdHocEvery submits a random skip-style ad-hoc change every this
	// many steps (0 = never).
	AdHocEvery int
	// DiskFaults enables transient injected write/sync fault windows
	// (wedging the committer until healed) and, with CrashEvery,
	// simulated crashes.
	DiskFaults bool
	// ReopenEvery closes and reopens the system every this many steps,
	// asserting exact state equality across recovery (0 = never; a
	// final reopen check always runs).
	ReopenEvery int
	// CrashEvery arms a random crash point every this many steps
	// (requires DiskFaults; 0 = never). After the crash trips, the
	// store is reopened and checked for acknowledged-write loss.
	CrashEvery int
	// MaxRetries is the exception policy's retry budget before it
	// compensates by skip or suspend.
	MaxRetries int
	// RetryBackoff is the base (logical) retry backoff.
	RetryBackoff time.Duration
	// SweepEvery runs the deadline sweep every this many steps
	// (default 7).
	SweepEvery int
}

// DefaultConfig is the full adversarial mix at a size that runs in
// a few seconds.
func DefaultConfig() Config {
	return Config{
		Seed:          1,
		Instances:     24,
		Steps:         4000,
		Shards:        4,
		FailProb:      0.3,
		DeadlineStorm: true,
		EvolveEvery:   600,
		AdHocEvery:    90,
		DiskFaults:    true,
		ReopenEvery:   900,
		CrashEvery:    1150,
		MaxRetries:    2,
		RetryBackoff:  20 * time.Second,
		SweepEvery:    7,
	}
}

// Result counts what one soak run exercised. A result is only
// returned when every invariant held.
type Result struct {
	Steps         int // driver steps executed
	Created       int // instances created
	Finished      int // instances that reached the end node
	Activities    int // activities completed
	Failures      int // activity failures injected
	Timeouts      int // deadline expiries fired by sweeps
	Retries       int // retry backoffs lifted by sweeps
	Compensations int // policy compensations submitted by sweeps
	Skips         int // failures compensated by machine-generated skip changes
	Suspends      int // failures compensated by suspension
	Evolutions    int // schema evolutions applied
	AdHocs        int // ad-hoc changes applied
	FaultWindows  int // injected disk-fault windows
	Heals         int // successful heals (each forcing a checkpoint)
	WedgedSubmits int // submits rejected while the store was wedged
	Crashes       int // simulated crashes survived
	Reopens       int // clean close→reopen cycles verified

	// MetricsSummary renders the telemetry plane of the busiest session
	// (captured after the drain, before the final reopen resets the
	// counters); `adeptctl sim -stats` prints it. Not part of String().
	MetricsSummary string `json:"-"`
}

func (r *Result) String() string {
	return fmt.Sprintf(
		"steps=%d created=%d finished=%d activities=%d failures=%d timeouts=%d retries=%d compensations=%d skips=%d suspends=%d evolutions=%d adhocs=%d faultWindows=%d heals=%d wedgedSubmits=%d crashes=%d reopens=%d",
		r.Steps, r.Created, r.Finished, r.Activities, r.Failures, r.Timeouts,
		r.Retries, r.Compensations, r.Skips, r.Suspends, r.Evolutions, r.AdHocs,
		r.FaultWindows, r.Heals, r.WedgedSubmits, r.Crashes, r.Reopens)
}

// users is the deterministic user pool (see Org).
var users = []string{"ann", "bob", "cyn", "dan"}

// skippable names the activities the exception policy may skip via
// a machine-generated DeleteActivity: side branches whose loss keeps the
// process completable (never the writer of a mandatory input).
func skippable(node string) bool {
	switch node {
	case "prep", "check", "fetch":
		return true
	}
	return strings.HasPrefix(node, "audit_")
}

// Schema builds the deadline-bearing order process the soak runs:
//
//	start → triage → AND[ prep → check | fetch ] → ship → archive → end
//
// prep, check, fetch, and ship carry relative deadlines; prep, fetch,
// and ship escalate to a different role on expiry. triage writes the
// order record that ship requires.
func Schema() *model.Schema {
	b := model.NewBuilder("soak_order")
	b.DataElement("order", model.TypeString)
	triage := b.Activity("triage", "Triage", model.WithRole("clerk"))
	prep := b.Activity("prep", "Prepare", model.WithRole("warehouse"),
		model.WithDeadline(2*time.Minute), model.WithEscalation("sales"))
	check := b.Activity("check", "Check", model.WithRole("sales"),
		model.WithDeadline(3*time.Minute))
	fetch := b.Activity("fetch", "Fetch", model.WithRole("warehouse"),
		model.WithDeadline(90*time.Second), model.WithEscalation("clerk"))
	ship := b.Activity("ship", "Ship", model.WithRole("courier"),
		model.WithDeadline(4*time.Minute), model.WithEscalation("worker"))
	archive := b.Activity("archive", "Archive", model.WithRole("clerk"))
	b.Write("triage", "order", "out")
	b.Read("ship", "order", "in", true)
	s, err := b.Build(b.Seq(triage, b.Parallel(b.Seq(prep, check), fetch), ship, archive))
	if err != nil {
		panic(fmt.Sprintf("sim: soak schema: %v", err))
	}
	return s
}

// logicalClock is the injected time source: it only moves when the
// driver advances it, so deadline math is deterministic per seed.
type logicalClock struct{ t int64 }

func (c *logicalClock) Now() time.Time          { return time.Unix(0, c.t) }
func (c *logicalClock) Advance(d time.Duration) { c.t += int64(d) }
func (c *logicalClock) nanos() int64            { return c.t }

type runner struct {
	cfg   Config
	rng   *rand.Rand
	clock *logicalClock
	ffs   *vfs.FaultFS
	path  string
	sys   *adept2.System
	res   *Result

	// ackHist records, per instance, the history length at the last
	// acknowledged (successfully submitted) mutation; ackDone the
	// acknowledged completions. History only ever appends, so after a
	// crash the recovered lengths must cover these.
	ackHist map[string]int
	ackDone map[string]bool

	faultCloseAt int  // step at which the open fault window closes (0 = none)
	crashArmed   bool // a CrashAt script is pending

	// baseSeqs records each shard's journal head at the current session's
	// open, so the live shard-append counters can be reconciled against
	// actual journal growth. sessionDirty marks a session that saw a
	// fault window or an armed crash: a mid-batch injected fault can
	// stage records on some shards before erroring (under-counting
	// appends), so equality is only asserted for clean sessions.
	baseSeqs     []int
	sessionDirty bool
}

// Run executes one soak scenario and returns its counters; any
// invariant violation (or unexpected command error) aborts with an
// error. Everything runs on an in-memory filesystem, so the soak leaves
// no residue.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Instances <= 0 {
		cfg.Instances = 8
	}
	if cfg.Steps <= 0 {
		cfg.Steps = 1000
	}
	if cfg.SweepEvery <= 0 {
		cfg.SweepEvery = 7
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 20 * time.Second
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 2
	}
	r := &runner{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		clock:   &logicalClock{t: time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC).UnixNano()},
		ffs:     vfs.NewFaultFS(vfs.NewMemFS(), nil),
		path:    "soak/journal.wal",
		res:     &Result{},
		ackHist: make(map[string]int),
		ackDone: make(map[string]bool),
	}
	if err := r.ffs.MkdirAll("soak", 0o755); err != nil {
		return nil, err
	}
	if err := r.open(); err != nil {
		return nil, fmt.Errorf("sim: soak: first open: %w", err)
	}
	if err := r.sys.Deploy(Schema()); err != nil {
		return nil, fmt.Errorf("sim: soak: deploy: %w", err)
	}
	if err := r.run(ctx); err != nil {
		return nil, err
	}
	// End of scenario: stop injecting faults, heal, drain to full
	// completion, and do a final recovery-fidelity check.
	r.ffs.SetScript(nil)
	r.ffs.ClearCrash()
	r.crashArmed = false
	r.faultCloseAt = 0
	if err := r.sys.Heal(ctx); err != nil {
		return nil, fmt.Errorf("sim: soak: final heal: %w", err)
	}
	if err := r.drain(ctx); err != nil {
		return nil, err
	}
	// The post-drain session is the busiest the metrics plane gets:
	// reconcile it against ground truth and keep its summary before the
	// final reopen resets the counters.
	if err := r.checkMetrics(); err != nil {
		return nil, fmt.Errorf("sim: soak: after drain: %w", err)
	}
	if err := r.checkMining(ctx); err != nil {
		return nil, fmt.Errorf("sim: soak: after drain: %w", err)
	}
	r.res.MetricsSummary = metricsSummary(r.sys.Metrics())
	if err := r.reopenClean(ctx); err != nil {
		return nil, fmt.Errorf("sim: soak: final reopen: %w", err)
	}
	if err := r.checkInvariants(); err != nil {
		return nil, err
	}
	if err := r.sys.Close(); err != nil {
		return nil, fmt.Errorf("sim: soak: final close: %w", err)
	}
	return r.res, nil
}

func (r *runner) policy() adept2.ExceptionPolicy {
	maxRetries, backoff := r.cfg.MaxRetries, r.cfg.RetryBackoff
	return adept2.PolicyFunc(func(x adept2.Exception) adept2.Reaction {
		if x.Kind == adept2.DeadlineExpired {
			return adept2.Reaction{Action: adept2.ActionNone}
		}
		if x.Failures <= maxRetries {
			d := backoff
			for i := 1; i < x.Failures; i++ {
				d *= 2
			}
			return adept2.Reaction{Action: adept2.ActionRetry, Backoff: d}
		}
		if skippable(x.Node) {
			return adept2.Reaction{Action: adept2.ActionSkip}
		}
		return adept2.Reaction{Action: adept2.ActionSuspend}
	})
}

func (r *runner) open() error {
	sys, err := adept2.Open(r.path,
		adept2.WithOrg(sim.Org()),
		adept2.WithVFS(r.ffs),
		adept2.WithClock(r.clock.Now),
		adept2.WithExceptionPolicy(r.policy()),
		adept2.WithCheckpointing(adept2.CheckpointConfig{
			Every:       256,
			Shards:      r.cfg.Shards,
			GroupCommit: true,
		}),
	)
	if err != nil {
		return err
	}
	r.sys = sys
	snap := sys.Metrics()
	r.baseSeqs = make([]int, len(snap.Shards))
	for _, sh := range snap.Shards {
		r.baseSeqs[sh.Shard] = sh.Seq
	}
	r.sessionDirty = false
	return nil
}

// tolerate classifies a command error under adversarial conditions:
// raced-moot refusals and wedged-store rejections are part of the
// scenario; anything else is a soak failure.
func (r *runner) tolerate(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, adept2.ErrWedged) {
		r.res.WedgedSubmits++
		return nil
	}
	if errors.Is(err, adept2.ErrConflict) || errors.Is(err, adept2.ErrNotFound) ||
		errors.Is(err, adept2.ErrCompleted) || errors.Is(err, adept2.ErrSuspended) ||
		errors.Is(err, adept2.ErrNotCompliant) || errors.Is(err, adept2.ErrInvalid) {
		return nil
	}
	return err
}

// ackNow records the acknowledged state of an instance after a
// successful mutation.
func (r *runner) ackNow(instID string) {
	inst, ok := r.sys.Instance(instID)
	if !ok {
		return
	}
	r.ackHist[instID] = len(inst.HistoryEvents())
	if inst.Done() {
		r.ackDone[instID] = true
	}
}

func (r *runner) ackAll() {
	for _, inst := range r.sys.Instances() {
		r.ackNow(inst.ID())
	}
}

func (r *runner) run(ctx context.Context) error {
	for step := 1; step <= r.cfg.Steps; step++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		r.res.Steps = step
		r.clock.Advance(time.Duration(1+r.rng.Intn(5)) * time.Second)

		if r.crashArmed && r.ffs.Crashed() {
			if err := r.reopenAfterCrash(ctx); err != nil {
				return fmt.Errorf("sim: soak step %d: crash recovery: %w", step, err)
			}
		}
		if err := r.manageFaults(ctx, step); err != nil {
			return fmt.Errorf("sim: soak step %d: %w", step, err)
		}
		if err := r.topUpInstances(ctx); err != nil {
			return fmt.Errorf("sim: soak step %d: create: %w", step, err)
		}
		if err := r.userAction(ctx); err != nil {
			return fmt.Errorf("sim: soak step %d: action: %w", step, err)
		}
		if r.cfg.DeadlineStorm && step%211 == 0 {
			r.clock.Advance(10 * time.Minute)
		}
		if step%r.cfg.SweepEvery == 0 {
			if err := r.sweep(ctx); err != nil {
				return fmt.Errorf("sim: soak step %d: sweep: %w", step, err)
			}
		}
		if r.cfg.EvolveEvery > 0 && step%r.cfg.EvolveEvery == 0 {
			if err := r.evolve(); err != nil {
				return fmt.Errorf("sim: soak step %d: evolve: %w", step, err)
			}
		}
		if r.cfg.AdHocEvery > 0 && step%r.cfg.AdHocEvery == 0 {
			if err := r.adHoc(); err != nil {
				return fmt.Errorf("sim: soak step %d: adhoc: %w", step, err)
			}
		}
		if r.cfg.ReopenEvery > 0 && step%r.cfg.ReopenEvery == 0 &&
			!r.crashArmed && r.faultCloseAt == 0 {
			if err := r.reopenClean(ctx); err != nil {
				return fmt.Errorf("sim: soak step %d: reopen: %w", step, err)
			}
		}
		if step%50 == 0 {
			if err := r.checkInvariants(); err != nil {
				return fmt.Errorf("sim: soak step %d: %w", step, err)
			}
			if err := r.checkMetrics(); err != nil {
				return fmt.Errorf("sim: soak step %d: %w", step, err)
			}
			if err := r.checkMining(ctx); err != nil {
				return fmt.Errorf("sim: soak step %d: %w", step, err)
			}
		}
	}
	return nil
}

// manageFaults opens and closes injected disk-fault windows and arms
// crash points.
func (r *runner) manageFaults(ctx context.Context, step int) error {
	if !r.cfg.DiskFaults {
		return nil
	}
	switch {
	case r.faultCloseAt != 0 && step >= r.faultCloseAt:
		r.ffs.SetScript(nil)
		if err := r.sys.Heal(ctx); err != nil {
			return fmt.Errorf("heal after fault window: %w", err)
		}
		r.res.Heals++
		r.faultCloseAt = 0
	case r.faultCloseAt == 0 && !r.crashArmed && step%131 == 17:
		r.ffs.SetScript(vfs.FailFrom(r.ffs.OpCount()+1+int64(r.rng.Intn(8)),
			vfs.ErrInjected, vfs.OpWrite, vfs.OpSync))
		r.faultCloseAt = step + 8 + r.rng.Intn(10)
		r.res.FaultWindows++
		r.sessionDirty = true
	}
	if r.cfg.CrashEvery > 0 && !r.crashArmed && r.faultCloseAt == 0 &&
		step%r.cfg.CrashEvery == 0 {
		r.ffs.SetScript(vfs.CrashAt(r.ffs.OpCount() + 1 + int64(r.rng.Intn(30))))
		r.crashArmed = true
		r.sessionDirty = true
	}
	return nil
}

func (r *runner) topUpInstances(ctx context.Context) error {
	live := 0
	for _, inst := range r.sys.Instances() {
		if !inst.Done() {
			live++
		}
	}
	for live < r.cfg.Instances {
		inst, err := r.sys.CreateInstance("soak_order")
		if err != nil {
			return r.tolerate(err)
		}
		r.res.Created++
		r.ackNow(inst.ID())
		live++
	}
	return nil
}

// userAction performs one random worklist action: start, complete, or
// fail an offered/running activity on behalf of a random user.
func (r *runner) userAction(ctx context.Context) error {
	user := users[r.rng.Intn(len(users))]
	items := r.sys.WorkItems(user)
	if len(items) == 0 {
		return nil
	}
	it := items[r.rng.Intn(len(items))]
	inst, ok := r.sys.Instance(it.Instance)
	if !ok {
		return nil
	}
	running := inst.NodeState(it.Node) == state.Running
	switch {
	case running && r.rng.Float64() < r.cfg.FailProb:
		err := r.sys.Fail(ctx, it.Instance, it.Node, user,
			fmt.Sprintf("injected failure #%d", r.res.Failures+1))
		if terr := r.tolerate(err); terr != nil {
			return terr
		}
		if err == nil {
			r.res.Failures++
			r.ackNow(it.Instance)
			// Classify the observed compensation: the policy's skip
			// deletes the node from the instance view; its suspend
			// freezes the instance.
			if inst.Suspended() {
				r.res.Suspends++
			} else if _, stillThere := inst.View().Node(it.Node); !stillThere {
				r.res.Skips++
			}
		}
	case !running && r.rng.Float64() < 0.35:
		err := r.sys.Start(it.Instance, it.Node, user)
		if terr := r.tolerate(err); terr != nil {
			return terr
		}
		if err == nil {
			r.ackNow(it.Instance)
		}
	default:
		err := r.sys.Complete(it.Instance, it.Node, user, r.outputsFor(inst, it.Node))
		if terr := r.tolerate(err); terr != nil {
			return terr
		}
		if err == nil {
			r.res.Activities++
			r.ackNow(it.Instance)
			if inst.Done() {
				r.res.Finished++
			}
		}
	}
	return nil
}

func (r *runner) outputsFor(inst *adept2.Instance, node string) map[string]any {
	v := inst.View()
	var out map[string]any
	for _, de := range v.DataEdgesOf(node) {
		if de.Access != model.Write {
			continue
		}
		if out == nil {
			out = make(map[string]any)
		}
		out[de.Parameter] = fmt.Sprintf("v%d", r.rng.Intn(1000))
	}
	return out
}

func (r *runner) sweep(ctx context.Context) error {
	rep, err := r.sys.SweepDeadlines(ctx, r.clock.Now())
	if err != nil {
		// The sweep aborts on a wedged store — expected inside a fault
		// window.
		if errors.Is(err, adept2.ErrWedged) {
			r.res.WedgedSubmits++
			return nil
		}
		return err
	}
	if len(rep.Errors) > 0 {
		return fmt.Errorf("sweep reported %d errors, first: %w", len(rep.Errors), rep.Errors[0])
	}
	r.res.Timeouts += rep.Timeouts
	r.res.Retries += rep.Retries
	r.res.Compensations += rep.Compensated
	if rep.Timeouts+rep.Retries+rep.Compensated > 0 {
		r.ackAll()
	}
	return nil
}

// evolve serially inserts a fresh audit activity into the type's tail
// (between the last inserted audit — or ship — and archive), migrating
// compliant instances on the fly.
func (r *runner) evolve() error {
	latest := 1
	for _, s := range r.sys.Engine().AllSchemas() {
		if s.TypeName() == "soak_order" && s.Version() > latest {
			latest = s.Version()
		}
	}
	pred := "ship"
	if latest > 1 {
		pred = fmt.Sprintf("audit_%d", latest-1)
	}
	name := fmt.Sprintf("audit_%d", latest)
	ops := []adept2.Operation{&adept2.SerialInsert{
		Node: &model.Node{
			ID: name, Name: name, Type: model.NodeActivity,
			Role: "worker", Template: name,
			Deadline: int64(time.Minute), Escalation: "worker",
		},
		Pred: pred,
		Succ: "archive",
	}}
	_, err := r.sys.Evolve("soak_order", ops, adept2.EvolveOptions{})
	if terr := r.tolerate(err); terr != nil {
		return terr
	}
	if err == nil {
		r.res.Evolutions++
		r.ackAll()
	}
	return nil
}

// adHoc deletes a random still-activated skippable activity of a random
// live instance (the user-initiated flavor of the policy's skip
// compensation). Rejections are part of the experiment.
func (r *runner) adHoc() error {
	insts := r.sys.Instances()
	if len(insts) == 0 {
		return nil
	}
	inst := insts[r.rng.Intn(len(insts))]
	if inst.Done() || inst.Suspended() {
		return nil
	}
	var candidates []string
	for _, id := range inst.View().NodeIDs() {
		if skippable(id) && inst.NodeState(id) == state.Activated {
			candidates = append(candidates, id)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	node := candidates[r.rng.Intn(len(candidates))]
	err := r.sys.AdHocChange(inst.ID(), &adept2.DeleteActivity{ID: node})
	if terr := r.tolerate(err); terr != nil {
		return terr
	}
	if err == nil {
		r.res.AdHocs++
		r.ackNow(inst.ID())
	}
	return nil
}

// reopenClean closes the system and reopens it from disk, asserting the
// recovered state is byte-identical to the live state it replaced.
func (r *runner) reopenClean(ctx context.Context) error {
	want := summarize(r.sys)
	if err := r.sys.Close(); err != nil {
		return fmt.Errorf("close: %w", err)
	}
	if err := r.open(); err != nil {
		return fmt.Errorf("open: %w", err)
	}
	got := summarize(r.sys)
	if want != got {
		return fmt.Errorf("recovered state diverges from live state:\n%s", summaryDiff(want, got))
	}
	if err := r.checkInvariants(); err != nil {
		return fmt.Errorf("after reopen: %w", err)
	}
	r.ackAll()
	r.res.Reopens++
	return nil
}

// reopenAfterCrash recovers from a tripped crash script and asserts no
// acknowledged write was lost: every instance whose mutation was
// acknowledged still exists with at least the acknowledged history
// length (history only appends), and acknowledged completions stay
// completed.
func (r *runner) reopenAfterCrash(ctx context.Context) error {
	_ = r.sys.Close() // the crashed store may refuse a clean close
	r.ffs.ClearCrash()
	r.ffs.SetScript(nil)
	r.crashArmed = false
	if err := r.open(); err != nil {
		return fmt.Errorf("open after crash: %w", err)
	}
	for id, n := range r.ackHist {
		inst, ok := r.sys.Instance(id)
		if !ok {
			return fmt.Errorf("acknowledged instance %s lost in crash", id)
		}
		if got := len(inst.HistoryEvents()); got < n {
			return fmt.Errorf("instance %s lost acknowledged history: %d < %d", id, got, n)
		}
		if r.ackDone[id] && !inst.Done() {
			return fmt.Errorf("instance %s lost acknowledged completion", id)
		}
	}
	if err := r.checkInvariants(); err != nil {
		return fmt.Errorf("after crash recovery: %w", err)
	}
	// Unacknowledged suffixes may have survived; rebase the
	// acknowledged baseline on what actually recovered.
	r.ackHist = make(map[string]int)
	r.ackDone = make(map[string]bool)
	r.ackAll()
	r.res.Crashes++
	return nil
}

// drain is the administrator's cleanup after the adversarial phase:
// resume suspended instances, release pending compensations, sweep, and
// complete all offered work until every instance finishes.
func (r *runner) drain(ctx context.Context) error {
	rounds := 200 + 40*r.cfg.Instances
	for round := 0; round < rounds; round++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		r.clock.Advance(45 * time.Second)
		for _, inst := range r.sys.Instances() {
			if inst.Done() {
				continue
			}
			if inst.Suspended() {
				if err := r.tolerate(r.sys.Resume(inst.ID())); err != nil {
					return fmt.Errorf("sim: drain resume %s: %w", inst.ID(), err)
				}
			}
			for _, node := range inst.View().NodeIDs() {
				if inst.PendingCompensation(node) {
					_, err := r.sys.Submit(ctx, &adept2.RetryActivity{
						Instance: inst.ID(), Node: node, At: r.clock.nanos(),
					})
					if terr := r.tolerate(err); terr != nil {
						return fmt.Errorf("sim: drain retry %s/%s: %w", inst.ID(), node, terr)
					}
				}
			}
		}
		if err := r.sweep(ctx); err != nil {
			return fmt.Errorf("sim: drain: %w", err)
		}
		for _, user := range users {
			for _, it := range r.sys.WorkItems(user) {
				inst, ok := r.sys.Instance(it.Instance)
				if !ok {
					continue
				}
				err := r.sys.Complete(it.Instance, it.Node, user, r.outputsFor(inst, it.Node))
				if terr := r.tolerate(err); terr != nil {
					return fmt.Errorf("sim: drain complete %s/%s: %w", it.Instance, it.Node, terr)
				}
				if err == nil {
					r.res.Activities++
					r.ackNow(it.Instance)
					if inst.Done() {
						r.res.Finished++
					}
				}
			}
		}
		stuck := 0
		for _, inst := range r.sys.Instances() {
			if !inst.Done() {
				stuck++
			}
		}
		if stuck == 0 {
			return nil
		}
	}
	var stuck []string
	for _, inst := range r.sys.Instances() {
		if !inst.Done() {
			stuck = append(stuck, fmt.Sprintf("%s(susp=%v)", inst.ID(), inst.Suspended()))
		}
	}
	return fmt.Errorf("sim: drain: %d instances never finished: %s", len(stuck), strings.Join(stuck, " "))
}

// checkMetrics reconciles the telemetry plane against ground truth of
// the current session:
//
//   - per-op accounting: ok - batched submissions must equal the
//     latency histogram's population (the histogram only sees singular
//     submits);
//   - engine gauges must equal the engine's actual instance, worklist,
//     and open-exception counts;
//   - the live shard-append counters must equal the journal growth
//     since open — exactly in a clean session, and never exceed it when
//     injected faults could abort a batch mid-stage.
func (r *runner) checkMetrics() error {
	snap := r.sys.Metrics()
	for op, o := range snap.Ops {
		if o.OK-o.Batched != o.Latency.Count {
			return fmt.Errorf(
				"metrics invariant: op %s: ok=%d batched=%d but latency histogram holds %d",
				op, o.OK, o.Batched, o.Latency.Count)
		}
	}
	if got := len(r.sys.Instances()); snap.Engine.Instances != got {
		return fmt.Errorf("metrics invariant: instances gauge %d, engine has %d", snap.Engine.Instances, got)
	}
	if got := len(r.sys.OpenExceptions()); snap.Engine.OpenExceptions != got {
		return fmt.Errorf("metrics invariant: open-exceptions gauge %d, engine has %d", snap.Engine.OpenExceptions, got)
	}
	var appends, growth int64
	for _, sh := range snap.Shards {
		appends += sh.Appends
		if sh.Shard < len(r.baseSeqs) {
			growth += int64(sh.Seq - r.baseSeqs[sh.Shard])
		}
	}
	if appends > growth {
		return fmt.Errorf("metrics invariant: %d appends counted but journals grew by %d", appends, growth)
	}
	if !r.sessionDirty && appends != growth {
		return fmt.Errorf("metrics invariant: clean session counted %d appends but journals grew by %d", appends, growth)
	}
	return nil
}

// checkMining reconciles the streaming mining scan against ground
// truth: System.Mine's variant table must carry exactly the counts
// obtained by recomputing each live instance's fingerprint one at a
// time from its own reduced history, and the population totals must
// match the engine. The batched scan and the per-instance recomputation
// share no aggregation state, so a fold bug on either side breaks the
// reconciliation for the scenario's seed.
func (r *runner) checkMining(ctx context.Context) error {
	rep, err := r.sys.Mine(ctx, adept2.MineOptions{MaxVariants: 1 << 16, BatchSize: 16})
	if err != nil {
		return fmt.Errorf("mining invariant: scan: %w", err)
	}
	insts := r.sys.Instances()
	if rep.Instances != int64(len(insts)) {
		return fmt.Errorf("mining invariant: scanned %d instances, engine has %d", rep.Instances, len(insts))
	}
	if rep.VariantOverflow != 0 {
		return fmt.Errorf("mining invariant: %d variants overflowed an uncapped table", rep.VariantOverflow)
	}
	want := make(map[string]int64)
	var done, biased int64
	var buf []*history.Event
	for _, inst := range insts {
		buf = inst.MineHistory(buf, func(v engine.MineView) {
			want[fmt.Sprintf("%016x", mining.Fingerprint(v.Reduced))]++
			if v.Done {
				done++
			}
			if v.Biased {
				biased++
			}
		})
	}
	if rep.Done != done || rep.Biased != biased {
		return fmt.Errorf("mining invariant: done/biased %d/%d, ground truth %d/%d",
			rep.Done, rep.Biased, done, biased)
	}
	got := make(map[string]int64, len(rep.Variants))
	for _, v := range rep.Variants {
		got[v.Fingerprint] = v.Count
	}
	if len(got) != len(want) {
		return fmt.Errorf("mining invariant: %d mined variants, ground truth %d", len(got), len(want))
	}
	for fp, n := range want {
		if got[fp] != n {
			return fmt.Errorf("mining invariant: variant %s mined %d times, ground truth %d", fp, got[fp], n)
		}
	}
	return nil
}

// metricsSummary renders the scrape-worthy families of a snapshot as an
// indented block for the -stats output of adeptctl sim.
func metricsSummary(snap *obs.Snapshot) string {
	var b strings.Builder
	ops := make([]string, 0, len(snap.Ops))
	for op := range snap.Ops {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		o := snap.Ops[op]
		errs := int64(0)
		for _, n := range o.Errors {
			errs += n
		}
		fmt.Fprintf(&b, "  op %-9s ok=%-6d batched=%-6d errs=%d\n", op, o.OK, o.Batched, errs)
	}
	for _, sh := range snap.Shards {
		fmt.Fprintf(&b, "  shard %d: appends=%d seq=%d depth=%d wedged=%v\n",
			sh.Shard, sh.Appends, sh.Seq, sh.Depth, sh.Wedged)
	}
	fmt.Fprintf(&b, "  committer: fsyncs=%d retries=%d wedges=%d heals=%d\n",
		snap.Committer.Fsync.Count, snap.Committer.FlushRetries,
		snap.Committer.Wedges, snap.Committer.Heals)
	fmt.Fprintf(&b, "  checkpoint: count=%d failures=%d bytesWritten=%d\n",
		snap.Checkpoint.Count, snap.Checkpoint.Failures, snap.Checkpoint.BytesWritten)
	fmt.Fprintf(&b, "  recovery: replayed=%d fallbacks=%d fullReplays=%d bytesRead=%d\n",
		snap.Recovery.Replayed, snap.Recovery.Fallbacks, snap.Recovery.FullReplays,
		snap.Checkpoint.BytesRead)
	fmt.Fprintf(&b, "  exception: failures=%d timeouts=%d retries=%d escalations=%d compensated=%d sweeps=%d\n",
		snap.Exception.Failures, snap.Exception.Timeouts, snap.Exception.Retries,
		snap.Exception.Escalations, snap.Exception.Compensated, snap.Exception.Sweeps)
	fmt.Fprintf(&b, "  engine: instances=%d worklist=%d openExceptions=%d traces=%d\n",
		snap.Engine.Instances, snap.Engine.WorklistDepth, snap.Engine.OpenExceptions,
		len(snap.Traces))
	return strings.TrimRight(b.String(), "\n")
}

// checkInvariants asserts the global safety invariants over the live
// state: no lost or phantom work items, and no wedged instances.
func (r *runner) checkInvariants() error {
	wl := r.sys.Engine().Worklist()
	for _, inst := range r.sys.Instances() {
		if inst.Done() {
			continue
		}
		v := inst.View()
		hasOpen := false
		for _, id := range v.NodeIDs() {
			n, _ := v.Node(id)
			st := inst.NodeState(id)
			if st == state.Activated || st == state.Running {
				hasOpen = true
			}
			if inst.Suspended() || n.Type != model.NodeActivity || n.Auto {
				continue
			}
			_, retryPending := inst.RetryDue(id)
			suppressed := retryPending || inst.PendingCompensation(id)
			switch st {
			case state.Activated:
				_, hasItem := wl.ItemFor(inst.ID(), id)
				if suppressed && hasItem {
					return fmt.Errorf("invariant: %s/%s is suppressed but has a work item", inst.ID(), id)
				}
				if !suppressed && !hasItem {
					return fmt.Errorf("invariant: lost work item for activated %s/%s", inst.ID(), id)
				}
			case state.Running:
				if _, hasItem := wl.ItemFor(inst.ID(), id); !hasItem {
					return fmt.Errorf("invariant: lost work item for running %s/%s", inst.ID(), id)
				}
			}
		}
		if !inst.Suspended() && !hasOpen {
			return fmt.Errorf("invariant: instance %s is wedged (live, nothing activated or running)", inst.ID())
		}
	}
	for _, inst := range r.sys.Instances() {
		for _, it := range wl.ItemsForInstance(inst.ID()) {
			if inst.Done() {
				return fmt.Errorf("invariant: phantom work item %s on completed %s", it.ID, inst.ID())
			}
			if st := inst.NodeState(it.Node); st != state.Activated && st != state.Running {
				return fmt.Errorf("invariant: work item %s for %s/%s in state %s", it.ID, inst.ID(), it.Node, st)
			}
		}
	}
	return nil
}

// summarize renders the complete observable state of a system into a
// deterministic string: per-instance flags, per-node marking and
// exception state (deadlines, retry backoffs, failure counts,
// escalations, pending compensations), history lengths, and every
// user's worklist. Two systems with equal summaries are
// indistinguishable to every public API the soak exercises.
func summarize(sys *adept2.System) string {
	var b strings.Builder
	for _, inst := range sys.Instances() {
		fmt.Fprintf(&b, "%s type=%s v=%d done=%v susp=%v hist=%d migr=%d\n",
			inst.ID(), inst.TypeName(), inst.Version(), inst.Done(), inst.Suspended(),
			len(inst.HistoryEvents()), inst.Migrations())
		v := inst.View()
		for _, id := range v.NodeIDs() {
			dl, _ := inst.Deadline(id)
			ra, _ := inst.RetryDue(id)
			fmt.Fprintf(&b, "  %s st=%s dl=%d ra=%d f=%d esc=%v cp=%v\n",
				id, inst.NodeState(id), dl, ra, inst.FailureCount(id),
				inst.Escalated(id), inst.PendingCompensation(id))
		}
	}
	for _, user := range users {
		items := sys.WorkItems(user)
		// Items sort by (instance, node), not ID: re-offers replayed by
		// concurrent shard recoveries draw fresh IDs in a different
		// interleaving, and the durable contract covers which work is
		// offered to whom and in what state, not the synthetic ID.
		sort.Slice(items, func(i, j int) bool {
			if items[i].Instance != items[j].Instance {
				return items[i].Instance < items[j].Instance
			}
			return items[i].Node < items[j].Node
		})
		for _, it := range items {
			fmt.Fprintf(&b, "wl %s %s/%s role=%s state=%s claimed=%s\n",
				user, it.Instance, it.Node, it.Role, it.State, it.ClaimedBy)
		}
	}
	return b.String()
}

// summaryDiff returns the first few differing lines of two summaries.
func summaryDiff(want, got string) string {
	w, g := strings.Split(want, "\n"), strings.Split(got, "\n")
	var out []string
	for i := 0; i < len(w) || i < len(g); i++ {
		var lw, lg string
		if i < len(w) {
			lw = w[i]
		}
		if i < len(g) {
			lg = g[i]
		}
		if lw != lg {
			out = append(out, fmt.Sprintf("-%s\n+%s", lw, lg))
			if len(out) >= 8 {
				out = append(out, "…")
				break
			}
		}
	}
	return strings.Join(out, "\n")
}
