package adept2

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"adept2/internal/durable/sharded"
	"adept2/internal/obs"
	"adept2/internal/persist"
)

// Receipt is the durability promise of an asynchronously submitted
// command: the engine mutation already happened and the journal record is
// staged when SubmitAsync returns; Wait resolves once the record is
// covered by an fsync (group commit batches the flushes, so pipelining
// submitters share them). Receipts of commands that were durable on
// return (control commands in a sharded layout, systems without group
// commit or without a journal) resolve immediately.
type Receipt struct {
	op     string
	inst   string
	seq    int
	shard  int
	result any
	wait   func(ctx context.Context) error // nil = durable already

	// span is this command's sampled trace (nil for unsampled ones):
	// built on the submit path, published into ring once the first Wait
	// resolves the durability outcome. nowNanos is the system clock.
	span     *obs.Span
	ring     *obs.TraceRing
	nowNanos func() int64

	mu   sync.Mutex
	done bool
	err  error
}

// Result returns the command's result (e.g. the *Instance of a
// CreateInstance, the *MigrationReport of an Evolve; nil for most
// commands). The result is valid as soon as SubmitAsync returned — it
// reflects the applied engine state — but it is not crash-durable until
// Wait resolves.
func (r *Receipt) Result() any { return r.result }

// Seq returns the journal sequence number the command's record received
// (shard-local in a sharded layout; 0 without a journal).
func (r *Receipt) Seq() int { return r.seq }

// Shard returns the shard the command's record routed to (always 0 in a
// single-journal layout; 0 is the control shard in a sharded one).
// Together with Seq it identifies the record's durable position.
func (r *Receipt) Shard() int { return r.shard }

// Wait blocks until the record is durable, the durability pipeline
// wedges (ErrWedged), or ctx is done (ErrCanceled; the record stays
// queued, and a later Wait can still await it). Wait is idempotent and
// safe for concurrent use.
func (r *Receipt) Wait(ctx context.Context) error {
	r.mu.Lock()
	if r.done {
		err := r.err
		r.mu.Unlock()
		return err
	}
	w := r.wait
	r.mu.Unlock()
	var err error
	if w != nil {
		err = w(ctx)
	}
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		// Cancellation abandons only this wait, not the outcome.
		return &Error{Code: CodeCanceled, Op: r.op, Instance: r.inst, Applied: true, Result: r.result, Err: err}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.done {
		r.done = true
		if err != nil {
			r.err = &Error{Code: CodeWedged, Op: r.op, Instance: r.inst, Applied: true, Result: r.result, Err: err}
		}
		r.publishSpanLocked()
	}
	return r.err
}

// publishSpanLocked stamps the durability outcome onto a sampled span
// and publishes it (once, on the done transition). Callers hold r.mu.
func (r *Receipt) publishSpanLocked() {
	if r.span == nil {
		return
	}
	if r.err == nil {
		r.span.DurableNanos = r.nowNanos()
	} else {
		r.span.Err = string(codeOf(r.err))
	}
	r.ring.Publish(*r.span)
	r.span = nil
}

// Submit applies one command and blocks until its journal record is
// durable: when Submit returns nil, the command survives a crash. The
// result is the command's typed result (see Receipt.Result). ctx bounds
// the durability wait — on cancellation the command may still have been
// applied and journaled (ErrCanceled reports only the abandoned wait).
// All failures carry the Error taxonomy of this package.
func (s *System) Submit(ctx context.Context, cmd Command) (any, error) {
	r, err := s.SubmitAsync(ctx, cmd)
	if err != nil {
		return nil, err
	}
	if err := r.Wait(ctx); err != nil {
		return nil, err
	}
	return r.Result(), nil
}

// SubmitAsync applies one command and returns without waiting for
// durability: validation and the engine mutation are synchronous (a
// non-nil error means nothing happened), but the journal record is only
// staged in the group-commit pipeline. The Receipt resolves once the
// record is fsync-covered, so a caller pipelines appends — submit,
// collect receipts, await them in bulk — instead of paying one fsync
// round-trip per command. Control commands in a multi-shard layout are
// durable on return (their epoch semantics require it); their receipts
// resolve immediately.
func (s *System) SubmitAsync(ctx context.Context, cmd Command) (*Receipt, error) {
	c, ok := cmd.(command)
	if !ok {
		return nil, &Error{Code: CodeInvalid, Op: cmd.CommandName(),
			Err: fmt.Errorf("adept2: foreign Command implementation %T", cmd)}
	}
	m := s.met
	if m == nil {
		// Metrics off: no recording, no clock reads — one branch.
		return s.submitOne(ctx, c, nil)
	}
	start := time.Now()
	var span *obs.Span
	if m.Ring.Sample() {
		span = &obs.Span{Op: c.CommandName(), Instance: c.target(), SubmitNanos: s.now()}
	}
	rcpt, err := s.submitOne(ctx, c, span)
	if err != nil {
		m.SubmitErr(c.opIndex(), codeIndexOf(err))
		if span != nil {
			span.Err = string(codeOf(err))
			m.Ring.Publish(*span)
		}
		return nil, err
	}
	m.SubmitOK(c.opIndex(), time.Since(start).Nanoseconds())
	return rcpt, nil
}

// submitOne is the submission core: validation, wedge check, barrier,
// apply, journal staging. span (when the trace ring sampled this
// command) is stamped along the way and either published here (durable
// on return) or handed to the Receipt to publish when Wait resolves.
func (s *System) submitOne(ctx context.Context, c command, span *obs.Span) (*Receipt, error) {
	if err := ctx.Err(); err != nil {
		return nil, wrapErr(c.CommandName(), c.target(), err)
	}
	// Degraded mode: a wedged durability pipeline fails submissions fast,
	// BEFORE the engine mutation (Applied stays false — nothing happened),
	// instead of mutating state whose journal record could never become
	// durable. Reads keep flowing; Heal restores write service.
	if err := s.wedgedErr(); err != nil {
		return nil, &Error{Code: CodeWedged, Op: c.CommandName(), Instance: c.target(), Err: err}
	}
	var unlock func()
	if c.control() {
		unlock = s.lockControl()
	} else {
		s.snapMu.RLock()
		unlock = s.snapMu.RUnlock
	}
	eff, err := c.run(s)
	if err == nil {
		if span != nil {
			span.AppliedNanos = s.now()
		}
		err = finishEffect(c, &eff)
	}
	if err != nil {
		unlock()
		return nil, wrapErr(c.CommandName(), c.target(), err)
	}
	rcpt, err := s.appendEffect(eff)
	unlock()
	if err != nil {
		return nil, s.wrapAppendErr(c.CommandName(), eff.inst, eff.result, err)
	}
	rcpt.op = c.CommandName()
	rcpt.inst = eff.inst
	rcpt.result = eff.result
	if span != nil {
		span.Shard, span.Seq = rcpt.shard, rcpt.seq
		if rcpt.wait == nil {
			span.DurableNanos = s.now()
			s.met.Ring.Publish(*span)
		} else {
			rcpt.span, rcpt.ring = span, s.met.Ring
			rcpt.nowNanos = func() int64 { return s.now() }
		}
	}
	return rcpt, nil
}

// SubmitBatch applies a sequence of commands, journaling each run of
// consecutive data commands as ONE batch: the command barrier is taken
// once per run, the encoded records land in one multi-record append per
// touched journal (one fsync or one group-commit wait each), and the
// call returns once everything is durable. Control commands interleaved
// in the batch keep their exclusive-barrier epoch semantics — each one
// is applied and made durable individually before the batch continues.
//
// Results align with the applied prefix of cmds. On error, the commands
// before the failing one remain applied AND journaled (their results are
// returned); the failing command had no effect.
func (s *System) SubmitBatch(ctx context.Context, cmds []Command) ([]any, error) {
	results := make([]any, 0, len(cmds))
	i := 0
	for i < len(cmds) {
		ci, ok := cmds[i].(command)
		if !ok {
			return results, &Error{Code: CodeInvalid, Op: cmds[i].CommandName(),
				Err: fmt.Errorf("adept2: foreign Command implementation %T", cmds[i])}
		}
		if err := ctx.Err(); err != nil {
			return results, wrapErr(ci.CommandName(), ci.target(), err)
		}
		if ci.control() {
			res, err := s.Submit(ctx, cmds[i])
			if err != nil {
				return results, err
			}
			results = append(results, res)
			i++
			continue
		}

		// A run of consecutive data commands: apply under one shared
		// barrier acquisition, journal as one batch. A failing command
		// ends the run — the applied prefix MUST still be journaled
		// (its engine mutations happened).
		var (
			effs   []effect
			runErr error
		)
		j := i
		s.snapMu.RLock()
		for ; j < len(cmds); j++ {
			cj, ok := cmds[j].(command)
			if !ok || cj.control() {
				break
			}
			// The wedge check runs per command, before its engine
			// mutation: commands already applied in this run stay in the
			// journaled prefix, the rest fail fast un-applied.
			if err := s.wedgedErr(); err != nil {
				runErr = &Error{Code: CodeWedged, Op: cj.CommandName(), Instance: cj.target(), Err: err}
				s.met.SubmitErr(cj.opIndex(), codeIndexOf(runErr))
				break
			}
			eff, err := cj.run(s)
			if err == nil {
				err = finishEffect(cj, &eff)
			}
			if err != nil {
				runErr = wrapErr(cj.CommandName(), cj.target(), err)
				s.met.SubmitErr(cj.opIndex(), codeIndexOf(runErr))
				break
			}
			s.met.SubmitBatched(cj.opIndex())
			effs = append(effs, eff)
		}
		appendErr := s.appendBatchRun(ctx, effs)
		s.snapMu.RUnlock()
		for _, eff := range effs {
			results = append(results, eff.result)
		}
		if appendErr != nil {
			return results, s.wrapAppendErr("batch", "", nil, appendErr)
		}
		if runErr != nil {
			return results, runErr
		}
		i = j
	}
	return results, nil
}

// appendEffect journals one effect without waiting for durability and
// returns a Receipt whose wait covers it. Callers hold the command
// barrier.
func (s *System) appendEffect(eff effect) (*Receipt, error) {
	switch {
	case s.wal != nil:
		if eff.inst == "" {
			// Control records advance the epoch, which is only sound
			// once the record is durable — so they never pipeline.
			seq, err := s.wal.AppendControl(eff.op, eff.args)
			if err != nil {
				return nil, err
			}
			s.met.ShardAppend(0, 1)
			s.maybeCheckpoint()
			return &Receipt{seq: seq}, nil
		}
		shard, seq, durable, err := s.wal.AppendDataAsync(eff.inst, eff.op, eff.args)
		if err != nil {
			return nil, err
		}
		s.met.ShardAppend(shard, 1)
		s.maybeCheckpoint()
		r := &Receipt{seq: seq, shard: shard}
		if !durable {
			wal := s.wal
			r.wait = func(ctx context.Context) error { return wal.WaitShardSeq(ctx, shard, seq) }
		}
		return r, nil
	case s.committer != nil:
		seq, err := s.committer.AppendAsync(eff.op, 0, eff.args)
		if err != nil {
			return nil, err
		}
		s.met.ShardAppend(0, 1)
		s.maybeCheckpoint()
		c := s.committer
		return &Receipt{seq: seq, wait: func(ctx context.Context) error { return c.WaitSeq(ctx, seq) }}, nil
	case s.journal != nil:
		seq, err := s.journal.AppendSeq(eff.op, eff.args)
		if err != nil {
			return nil, err
		}
		s.met.ShardAppend(0, 1)
		s.maybeCheckpoint()
		return &Receipt{seq: seq}, nil
	default:
		return &Receipt{}, nil
	}
}

// appendBatchRun journals one SubmitBatch run through appendEffects and
// records the batch family: run size, append + durability-wait latency,
// and (on success) the per-shard staged-record counters.
func (s *System) appendBatchRun(ctx context.Context, effs []effect) error {
	m := s.met
	if m == nil || len(effs) == 0 {
		return s.appendEffects(ctx, effs)
	}
	start := time.Now()
	err := s.appendEffects(ctx, effs)
	m.BatchSize.Observe(int64(len(effs)))
	m.BatchNanos.Observe(time.Since(start).Nanoseconds())
	if err == nil {
		for i := range effs {
			shard := 0
			if s.wal != nil {
				shard = s.wal.ShardFor(effs[i].inst)
			}
			m.ShardAppend(shard, 1)
		}
	}
	return err
}

// appendEffects journals a batch of data effects as one multi-record
// append per touched journal and blocks until the batch is durable.
// Callers hold the shared command barrier.
func (s *System) appendEffects(ctx context.Context, effs []effect) error {
	if len(effs) == 0 {
		return nil
	}
	switch {
	case s.wal != nil:
		recs := make([]sharded.DataRecord, len(effs))
		for i, eff := range effs {
			recs[i] = sharded.DataRecord{Instance: eff.inst, Op: eff.op, Args: eff.args}
		}
		if err := s.wal.AppendDataMulti(ctx, recs); err != nil {
			return err
		}
	case s.committer != nil:
		last, err := s.committer.AppendMulti(pending(effs))
		if err != nil {
			return err
		}
		if err := s.committer.WaitSeq(ctx, last); err != nil {
			return err
		}
	case s.journal != nil:
		if _, err := s.journal.AppendMulti(pending(effs)); err != nil {
			return err
		}
	default:
		return nil
	}
	s.maybeCheckpoint()
	return nil
}

func pending(effs []effect) []persist.Pending {
	pend := make([]persist.Pending, len(effs))
	for i, eff := range effs {
		pend[i] = persist.Pending{Op: eff.op, Args: eff.args}
	}
	return pend
}

// wrapAppendErr classifies a journaling failure: a wedged durability
// pipeline (sticky group-commit error) maps to ErrWedged, cancellations
// to ErrCanceled, everything else to ErrInternal. The engine mutation
// already happened when appending fails — the error reports lost
// durability, not a rejected command.
func (s *System) wrapAppendErr(op, inst string, res any, err error) error {
	if err == nil {
		return nil
	}
	var e *Error
	if errors.As(err, &e) {
		return err
	}
	code := CodeInternal
	switch {
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		code = CodeCanceled
	case s.wedgedErr() != nil:
		code = CodeWedged
	}
	return &Error{Code: code, Op: op, Instance: inst, Applied: true, Result: res, Err: err}
}
