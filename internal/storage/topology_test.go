package storage_test

import (
	"fmt"
	"math/rand"
	"testing"

	"adept2/internal/change"
	"adept2/internal/engine"
	"adept2/internal/model"
	"adept2/internal/sim"
	"adept2/internal/storage"
)

// topologyMatches asserts that the topology index of a view is coherent
// with the view's own enumeration methods: same nodes, same per-type edge
// partition, same derived lists.
func topologyMatches(t *testing.T, ctx string, v model.SchemaView) {
	t.Helper()
	topo := v.Topology()
	ids := v.NodeIDs()
	if topo.NumNodes() != len(ids) {
		t.Fatalf("%s: topology has %d nodes, view %d", ctx, topo.NumNodes(), len(ids))
	}
	var wantAuto, wantManual []string
	for i, id := range ids {
		n, ok := v.Node(id)
		if !ok {
			t.Fatalf("%s: view enumerates unknown node %q", ctx, id)
		}
		nt := topo.Of(id)
		if nt == nil {
			t.Fatalf("%s: node %q missing from topology", ctx, id)
		}
		if nt.Index != i || nt.Node != n {
			t.Fatalf("%s: node %q: index/node mismatch", ctx, id)
		}
		checkPartition := func(kind string, got []*model.Edge, edges []*model.Edge, et model.EdgeType) {
			var want []*model.Edge
			for _, e := range edges {
				if e.Type == et {
					want = append(want, e)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("%s: node %q: %s has %d edges, want %d", ctx, id, kind, len(got), len(want))
			}
			seen := make(map[model.EdgeKey]bool, len(want))
			for _, e := range want {
				seen[e.Key()] = true
			}
			for _, e := range got {
				if !seen[e.Key()] {
					t.Fatalf("%s: node %q: %s contains unexpected edge %s", ctx, id, kind, e)
				}
			}
		}
		checkPartition("in-control", nt.InControl, v.InEdges(id), model.EdgeControl)
		checkPartition("in-sync", nt.InSync, v.InEdges(id), model.EdgeSync)
		checkPartition("in-loop", nt.InLoop, v.InEdges(id), model.EdgeLoop)
		checkPartition("out-control", nt.OutControl, v.OutEdges(id), model.EdgeControl)
		checkPartition("out-sync", nt.OutSync, v.OutEdges(id), model.EdgeSync)
		checkPartition("out-loop", nt.OutLoop, v.OutEdges(id), model.EdgeLoop)
		if n.CanAutoExecute() {
			wantAuto = append(wantAuto, id)
		}
		if n.Type == model.NodeActivity && !n.Auto {
			wantManual = append(wantManual, id)
		}
	}
	if got := topo.AutoExecutable(); fmt.Sprint(got) != fmt.Sprint(wantAuto) {
		t.Fatalf("%s: auto list %v, want %v", ctx, got, wantAuto)
	}
	if got := topo.ManualActivities(); fmt.Sprint(got) != fmt.Sprint(wantManual) {
		t.Fatalf("%s: manual list %v, want %v", ctx, got, wantManual)
	}

	// Interner invariants: dense contiguous node indices round-trip
	// through Idx/ID/At in NodeIDs order; every edge interns to a dense
	// EdgeIdx whose record and target agree with the edge itself, and the
	// per-node idx slices align element-for-element with the edge slices.
	for i, id := range ids {
		n, ok := topo.Idx(id)
		if !ok || int(n) != i || topo.ID(n) != id || topo.At(n) != topo.Of(id) {
			t.Fatalf("%s: node %q does not intern round-trip (idx %d, ok %v)", ctx, id, n, ok)
		}
	}
	if topo.NumEdges() != len(v.Edges()) {
		t.Fatalf("%s: topology has %d edges, view %d", ctx, topo.NumEdges(), len(v.Edges()))
	}
	for i, e := range v.Edges() {
		ei, ok := topo.EdgeIdxOf(e.Key())
		if !ok || int(ei) != i || topo.EdgeAt(ei) != e {
			t.Fatalf("%s: edge %s does not intern round-trip", ctx, e)
		}
		to, _ := topo.Idx(e.To)
		if topo.EdgeTarget(ei) != to {
			t.Fatalf("%s: edge %s target interned wrong", ctx, e)
		}
	}
	for _, id := range ids {
		nt := topo.Of(id)
		aligned := func(kind string, edges []*model.Edge, idxs []model.EdgeIdx) {
			if len(edges) != len(idxs) {
				t.Fatalf("%s: node %q: %s idx slice misaligned", ctx, id, kind)
			}
			for k := range edges {
				if topo.EdgeAt(idxs[k]) != edges[k] {
					t.Fatalf("%s: node %q: %s[%d] idx points at wrong edge", ctx, id, kind, k)
				}
			}
		}
		aligned("in-control", nt.InControl, nt.InControlIdx)
		aligned("in-sync", nt.InSync, nt.InSyncIdx)
		aligned("out-control", nt.OutControl, nt.OutControlIdx)
		aligned("out-sync", nt.OutSync, nt.OutSyncIdx)
		aligned("out-loop", nt.OutLoop, nt.OutLoopIdx)
	}
}

// TestOverlayTopologyCoherence applies random accepted ad-hoc changes to
// hybrid-represented instances and asserts after every change that the
// overlay's cached topology index (refreshed by the overlay's dirty path)
// matches both the overlay's enumeration and the topology of a freshly
// materialized copy of the view.
func TestOverlayTopologyCoherence(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		schemaRng := rand.New(rand.NewSource(int64(trial) + 900))
		name := fmt.Sprintf("topo%d", trial)
		schema := sim.RandomSchema(schemaRng, name, sim.DefaultSchemaOpts())

		e := engine.New(sim.Org())
		e.SetStorageStrategy(storage.Hybrid)
		if err := e.Deploy(schema); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		inst, err := e.CreateInstance(name, 0)
		if err != nil {
			t.Fatal(err)
		}
		runRng := rand.New(rand.NewSource(int64(trial)*13 + 5))
		driver := sim.NewDriver(runRng, e)
		if err := driver.Advance(inst, 3); err != nil {
			t.Fatalf("trial %d: advance: %v", trial, err)
		}

		opRng := rand.New(rand.NewSource(int64(trial)*7 + 1))
		applied := 0
		for attempt := 0; attempt < 12 && applied < 3; attempt++ {
			ops := sim.RandomAdHocOps(opRng, inst.View(), attempt)
			if change.ApplyAdHoc(inst, ops...) != nil {
				continue
			}
			applied++
			view := inst.View()
			ctx := fmt.Sprintf("trial %d change %d", trial, applied)
			topologyMatches(t, ctx, view)

			// The overlay topology must equal the topology of a full
			// materialization of the same view.
			mat, err := storage.Materialize(view, "mat", "t", 1)
			if err != nil {
				t.Fatalf("%s: materialize: %v", ctx, err)
			}
			topologyMatches(t, ctx+" (materialized)", mat)
			if !model.Equal(view, mat) {
				t.Fatalf("%s: materialized view differs", ctx)
			}
		}
	}
}
