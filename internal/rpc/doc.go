// Package rpc is the networked command plane: an HTTP/JSON server and
// a typed client that turn the in-process adept2 API into a network
// service without weakening its durability contract.
//
// # Wire model
//
// Commands travel as registry envelopes — {"op": <name>, "args":
// <json>} — produced by adept2.EncodeCommand and decoded server-side
// by adept2.DecodeWireCommand. The command registry is the single
// codec: an envelope is byte-compatible with the journal record the
// command produces, so the wire protocol versions with the journal
// format (a server replays and serves the same vocabulary). Unknown
// ops and malformed args are rejected before dispatch with ErrInvalid
// (and counted as decode errors in the RPC metrics).
//
// All routes live under the /v1 prefix; a breaking change to envelope,
// receipt, or stream semantics must mount a new version prefix and
// keep /v1 serving.
//
// # Endpoints
//
//	POST /v1/commands          submit one command (mode=sync|async)
//	POST /v1/batch             submit a run, durable on return
//	GET  /v1/watermarks        NDJSON watermark stream (?once=1: snapshot)
//	GET  /v1/control-log       durable control-log suffix (?follow=1: NDJSON tail)
//	GET  /v1/instances         cursor page; /v1/instances/{id} detail
//	GET  /v1/workitems         cursor page of a user's worklist
//	GET  /v1/exceptions        open exception set
//	GET  /v1/healthz           200 serving / 503 wedged or draining
//
// # Receipt tokens and durability
//
// An async submission answers a receipt token (shard, seq): the
// journal position the applied command's record received. The token's
// resolution rule is the same invariant the in-process Receipt waits
// on — the record is crash-durable exactly when the shard's durable
// watermark (highest fsync-covered sequence number) reaches seq.
//
// The server never tracks receipts. It streams watermark advances over
// GET /v1/watermarks as NDJSON — one JSON object per line, flushed per
// line — and clients resolve any number of in-flight receipts locally
// against that single stream. This is what preserves the async
// pipelining win across the hop: N outstanding submissions cost N
// small POSTs plus one shared stream, not N parked server goroutines.
// Sync mode (the default) is the same dispatch with the watermark wait
// folded into the response.
//
// Batch runs land as one multi-record append and are durable when the
// response arrives; on a mid-run failure the response still carries
// the applied prefix's results plus the in-band error envelope,
// because the prefix's records are journaled and durable.
//
// # Error envelope
//
// Every non-2xx response body is {"error": {"code", "op", "instance",
// "applied", "message"}} — the wire form of *adept2.Error. The HTTP
// status is derived from the code by Code.HTTPStatus (404 not_found,
// 409 conflict/version_skew, 403 denied, 503 wedged, ...). Clients
// rehydrate the envelope into *adept2.Error, so errors.Is against the
// taxonomy sentinels holds across the network; a stripped envelope
// (proxy, panic) degrades to adept2.CodeForHTTPStatus of the bare
// status.
//
// # Streams, backpressure, drain
//
// NDJSON streams (watermarks, control-log tail) are bounded by
// Options.MaxStreams; excess subscriptions are rejected 503. Command
// handlers are bounded by Options.MaxInflight slots; excess requests
// block in the handler, so the TCP connection — and HTTP/1.1's
// one-request-per-connection discipline — absorbs the queue.
//
// The control-log tail serves only fsync-covered records (a subscriber
// must never observe a record a crash could revoke) from shard 0, the
// epoch-stamping global-ordering shard; records arrive epoch-stamped
// exactly as journaled.
//
// Close drains in five steps: reject new work 503; wait for in-flight
// command handlers by owning every backpressure slot; force every
// staged record durable (SyncDurable); cancel streams, which emit
// final watermark events ("final": true) before ending — resolving
// every receipt issued before the drain — then shut the HTTP server
// down. A client whose stream ends refreshes the watermark snapshot
// once before failing a wait, so receipts covered by the drain sync
// resolve even when the final events were lost.
package rpc
