package durable

import (
	"encoding/json"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"adept2/internal/change"
	"adept2/internal/engine"
	"adept2/internal/persist"
	"adept2/internal/sim"
)

// populate builds a small engine: two instances of the online-order
// process, one advanced and one biased, with claimed work items.
func populate(t *testing.T) *engine.Engine {
	t.Helper()
	e := engine.New(sim.Org())
	if err := e.Deploy(sim.OnlineOrder()); err != nil {
		t.Fatal(err)
	}
	i1, err := e.CreateInstance("online_order", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.AdvanceOnlineOrderToI1(e, i1); err != nil {
		t.Fatal(err)
	}
	i2, err := e.CreateInstance("online_order", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.CompleteActivity(i2.ID(), "get_order", "ann", map[string]any{"out": "order-2"}); err != nil {
		t.Fatal(err)
	}
	if it, ok := e.Worklist().ItemFor(i2.ID(), "collect_data"); ok {
		if err := e.Claim(it.ID, "ann"); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func TestCaptureRestoreRoundTrip(t *testing.T) {
	e := populate(t)
	insts := e.Instances()
	st, err := Capture(e, 42)
	if err != nil {
		t.Fatal(err)
	}
	if st.Seq != 42 || len(st.Instances) != 2 || len(st.Schemas) != 1 {
		t.Fatalf("capture: %+v", st)
	}

	e2 := engine.New(nil)
	if err := Restore(e2, st); err != nil {
		t.Fatal(err)
	}
	for _, orig := range insts {
		re, ok := e2.Instance(orig.ID())
		if !ok {
			t.Fatalf("instance %s missing after restore", orig.ID())
		}
		if re.Version() != orig.Version() || re.Done() != orig.Done() {
			t.Fatalf("instance %s flags differ", orig.ID())
		}
		for _, n := range []string{"get_order", "collect_data", "compose_order", "pay"} {
			if got, want := re.NodeState(n), orig.NodeState(n); got != want {
				t.Fatalf("%s/%s: %s != %s", orig.ID(), n, got, want)
			}
		}
		if len(re.HistoryEvents()) != len(orig.HistoryEvents()) {
			t.Fatalf("%s history length differs", orig.ID())
		}
	}
	// Worklist items (and the claim) survived with their IDs.
	origItems := e.Worklist().ItemsFor("ann")
	restItems := e2.Worklist().ItemsFor("ann")
	if len(origItems) != len(restItems) {
		t.Fatalf("worklist items: %d != %d", len(origItems), len(restItems))
	}
	for i := range origItems {
		if origItems[i].ID != restItems[i].ID || origItems[i].State != restItems[i].State {
			t.Fatalf("item %d differs: %+v vs %+v", i, origItems[i], restItems[i])
		}
	}
	// Instance numbering continues, not restarts.
	i3, err := e2.CreateInstance("online_order", 0)
	if err != nil {
		t.Fatal(err)
	}
	if i3.ID() != "inst-000003" {
		t.Fatalf("counter not restored: %s", i3.ID())
	}
}

func TestCaptureRestoreBiasedInstance(t *testing.T) {
	e := engine.New(sim.Org())
	if err := e.Deploy(sim.OnlineOrder()); err != nil {
		t.Fatal(err)
	}
	inst, err := e.CreateInstance("online_order", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.CompleteActivity(inst.ID(), "get_order", "ann", map[string]any{"out": "o"}); err != nil {
		t.Fatal(err)
	}
	if err := change.ApplyAdHoc(inst, sim.OnlineOrderBiasI2()...); err != nil {
		t.Fatal(err)
	}
	st, err := Capture(e, 1)
	if err != nil {
		t.Fatal(err)
	}
	e2 := engine.New(nil)
	if err := Restore(e2, st); err != nil {
		t.Fatal(err)
	}
	re, _ := e2.Instance(inst.ID())
	if !re.Biased() || len(re.BiasOps()) != len(inst.BiasOps()) {
		t.Fatalf("bias lost: %v", re.BiasOps())
	}
	if re.NodeState("confirm_order") != inst.NodeState("confirm_order") {
		t.Fatal("bias-inserted node state differs")
	}
}

func TestSnapshotStoreWriteLoad(t *testing.T) {
	st := &SystemState{Format: FormatVersion, Seq: 7, InstanceCounter: 3}
	store, err := OpenStore(filepath.Join(t.TempDir(), "snaps"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Write(st); err != nil {
		t.Fatal(err)
	}
	entries, err := store.Entries()
	if err != nil || len(entries) != 1 || entries[0].Seq != 7 {
		t.Fatalf("entries=%v err=%v", entries, err)
	}
	got, err := store.Load(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 7 || got.InstanceCounter != 3 {
		t.Fatalf("loaded %+v", got)
	}
	m, err := store.ReadManifest()
	if err != nil || len(m.Snapshots) != 1 || m.Snapshots[0].Seq != 7 {
		t.Fatalf("manifest=%v err=%v", m, err)
	}
}

func TestSnapshotStoreDetectsCorruption(t *testing.T) {
	store, err := OpenStore(filepath.Join(t.TempDir(), "snaps"))
	if err != nil {
		t.Fatal(err)
	}
	file, err := store.Write(&SystemState{Format: FormatVersion, Seq: 3})
	if err != nil {
		t.Fatal(err)
	}
	entries, _ := store.Entries()

	blob, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"torn tail":     blob[:len(blob)-2],
		"flipped byte":  append(append([]byte{}, blob[:len(blob)-2]...), blob[len(blob)-2]^0xff, blob[len(blob)-1]),
		"trailing junk": append(append([]byte{}, blob...), 'x'),
		"empty":         nil,
	}
	for name, data := range cases {
		if err := os.WriteFile(file, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := store.Load(entries[0]); err == nil {
			t.Fatalf("%s: corruption not detected", name)
		}
	}
	// Version skew is rejected too.
	if err := os.WriteFile(file, []byte(`{"format":99,"seq":3,"len":2,"crc32":0}`+"\n{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Load(entries[0]); err == nil {
		t.Fatal("format skew not detected")
	}
}

func TestSnapshotStorePrune(t *testing.T) {
	store, err := OpenStore(filepath.Join(t.TempDir(), "snaps"))
	if err != nil {
		t.Fatal(err)
	}
	for seq := 1; seq <= 5; seq++ {
		if _, err := store.Write(&SystemState{Format: FormatVersion, Seq: seq}); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Prune(2); err != nil {
		t.Fatal(err)
	}
	entries, _ := store.Entries()
	if len(entries) != 2 || entries[0].Seq != 4 || entries[1].Seq != 5 {
		t.Fatalf("entries after prune: %v", entries)
	}
}

func TestCompactJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.ndjson")
	j, err := persist.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.SetSync(false)
	for i := 1; i <= 10; i++ {
		if err := j.Append("op", i); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	dropped, err := CompactJournal(path, 6)
	if err != nil || dropped != 6 {
		t.Fatalf("dropped=%d err=%v", dropped, err)
	}
	recs, err := persist.LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 || recs[0].Seq != 7 || recs[3].Seq != 10 {
		t.Fatalf("records after compact: %+v", recs)
	}
	// The compacted journal accepts further appends continuing the seq.
	j2, err := persist.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j2.SetSync(false)
	if err := j2.Append("op", 11); err != nil {
		t.Fatal(err)
	}
	if j2.Seq() != 11 {
		t.Fatalf("seq after reopen = %d", j2.Seq())
	}
	j2.Close()
}

func TestOpenStoreSweepsOrphanedTempFiles(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "snaps")
	if _, err := OpenStore(dir); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(dir, "snap-000000000009.json.tmp-123456")
	if err := os.WriteFile(orphan, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphaned temp file not swept: %v", err)
	}
}

// TestSnapshotCompression: new snapshots use the gzip container, report
// both sizes through ReadSnapshotInfo, and load back exactly; a raw v1
// container written by a pre-compression build still loads.
func TestSnapshotCompression(t *testing.T) {
	e := populate(t)
	st, err := Capture(e, 9)
	if err != nil {
		t.Fatal(err)
	}
	store, err := OpenStore(filepath.Join(t.TempDir(), "snaps"))
	if err != nil {
		t.Fatal(err)
	}
	file, err := store.Write(st)
	if err != nil {
		t.Fatal(err)
	}
	info, err := ReadSnapshotInfo(file)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Compressed || info.Seq != 9 {
		t.Fatalf("info: %+v", info)
	}
	if info.StoredLen >= info.RawLen {
		t.Fatalf("no compression win: stored %d, raw %d", info.StoredLen, info.RawLen)
	}
	if fi, err := os.Stat(file); err != nil || fi.Size() > int64(info.RawLen) {
		t.Fatalf("file larger than raw payload: %v bytes, err=%v", fi.Size(), err)
	}
	entries, _ := store.Entries()
	got, err := store.Load(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 9 || len(got.Instances) != len(st.Instances) {
		t.Fatalf("loaded %+v", got)
	}

	// Hand-build a v1 (raw) container the way pre-compression builds
	// wrote them: it must keep loading.
	payload, err := json.Marshal(&SystemState{Format: FormatVersion, Seq: 4, InstanceCounter: 2})
	if err != nil {
		t.Fatal(err)
	}
	hdr, _ := json.Marshal(map[string]any{
		"format": 1, "seq": 4, "len": len(payload), "crc32": crc32.ChecksumIEEE(payload),
	})
	raw := append(append(hdr, '\n'), payload...)
	v1 := filepath.Join(store.Dir(), "snap-000000000004.json")
	if err := os.WriteFile(v1, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	old, err := store.Load(ManifestEntry{File: "snap-000000000004.json", Seq: 4})
	if err != nil {
		t.Fatalf("v1 container must load: %v", err)
	}
	if old.InstanceCounter != 2 {
		t.Fatalf("v1 payload: %+v", old)
	}
	oldInfo, err := ReadSnapshotInfo(v1)
	if err != nil || oldInfo.Compressed || oldInfo.RawLen != len(payload) {
		t.Fatalf("v1 info: %+v err=%v", oldInfo, err)
	}
}

// TestEpochQualifiedSnapshotNames: states captured at a control epoch get
// epoch-qualified file names, so generations of a quiescent shard never
// overwrite each other; both name forms list and prune together.
func TestEpochQualifiedSnapshotNames(t *testing.T) {
	store, err := OpenStore(filepath.Join(t.TempDir(), "snaps"))
	if err != nil {
		t.Fatal(err)
	}
	f1, err := store.Write(&SystemState{Format: FormatVersion, Seq: 5, Epoch: 2})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := store.Write(&SystemState{Format: FormatVersion, Seq: 5, Epoch: 3})
	if err != nil {
		t.Fatal(err)
	}
	if f1 == f2 {
		t.Fatalf("distinct epochs must get distinct files: %s", f1)
	}
	entries, err := store.Entries()
	if err != nil || len(entries) != 2 {
		t.Fatalf("entries: %v err=%v", entries, err)
	}
	for _, e := range entries {
		if e.Seq != 5 {
			t.Fatalf("parsed seq: %+v", e)
		}
		if _, err := store.Load(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.PruneExcept(map[string]bool{entries[1].File: true}); err != nil {
		t.Fatal(err)
	}
	entries, _ = store.Entries()
	if len(entries) != 1 || entries[0].File == "" {
		t.Fatalf("after prune: %v", entries)
	}
}
