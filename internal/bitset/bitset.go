// Package bitset provides the fixed-size uint64 bitset the interned hot
// paths share: the marking's pending-dedup set (internal/state), the
// compliance replayer's in-history set, block region bitsets
// (internal/graph), and the history reducer's active-region union all
// index bits by a dense model.NodeIdx. The one-line accessors inline, so
// the shared type costs nothing over the hand-rolled idiom.
package bitset

// Set is a fixed-size bitset. Index bounds are the caller's contract: a
// Set sized with New(n) addresses bits [0, n).
type Set []uint64

// Words returns the number of uint64 words needed for n bits.
func Words(n int) int { return (n + 63) / 64 }

// New returns a zeroed bitset addressing n bits.
func New(n int) Set { return make(Set, Words(n)) }

// Has reports whether bit i is set.
func (s Set) Has(i int) bool { return s[i>>6]&(1<<(uint(i)&63)) != 0 }

// Set sets bit i.
func (s Set) Set(i int) { s[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (s Set) Clear(i int) { s[i>>6] &^= 1 << (uint(i) & 63) }

// Union ORs o into s. The sets must be sized for the same bit range.
func (s Set) Union(o Set) {
	for w, bits := range o {
		s[w] |= bits
	}
}

// Reset clears all bits, keeping the allocation.
func (s Set) Reset() {
	for i := range s {
		s[i] = 0
	}
}
