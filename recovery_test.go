package adept2_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"adept2"
	"adept2/internal/durable"
	"adept2/internal/persist"
	"adept2/internal/sim"
)

// runPrefix drives a deterministic scenario through the facade: deploy,
// two instances, progress on the first, a bias on the second, an
// evolution. Returns the IDs of the created instances.
func runPrefix(t *testing.T, sys *adept2.System) (string, string) {
	t.Helper()
	if err := sys.Deploy(sim.OnlineOrder()); err != nil {
		t.Fatal(err)
	}
	i1, err := sys.CreateInstance("online_order")
	if err != nil {
		t.Fatal(err)
	}
	i2, err := sys.CreateInstance("online_order")
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range []struct{ node, user string }{
		{"get_order", "ann"}, {"collect_data", "ann"}, {"compose_order", "bob"},
	} {
		var out map[string]any
		if step.node == "get_order" {
			out = map[string]any{"out": "o1"}
		}
		if err := sys.Complete(i1.ID(), step.node, step.user, out); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.AdHocChange(i2.ID(), sim.OnlineOrderBiasI2()...); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Evolve("online_order", sim.OnlineOrderTypeChange(), adept2.EvolveOptions{}); err != nil {
		t.Fatal(err)
	}
	return i1.ID(), i2.ID()
}

// runSuffix appends a few more commands past a checkpoint.
func runSuffix(t *testing.T, sys *adept2.System, i1 string) {
	t.Helper()
	if err := sys.Complete(i1, "send_questions", "ann", nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.Suspend(i1); err != nil {
		t.Fatal(err)
	}
	if err := sys.Resume(i1); err != nil {
		t.Fatal(err)
	}
}

// assertSameState compares the externally observable state of two systems.
func assertSameState(t *testing.T, want, got *adept2.System) {
	t.Helper()
	wi, gi := want.Instances(), got.Instances()
	if len(wi) != len(gi) {
		t.Fatalf("instance count: %d != %d", len(wi), len(gi))
	}
	for i := range wi {
		w, g := wi[i], gi[i]
		if w.ID() != g.ID() || w.Version() != g.Version() || w.Done() != g.Done() ||
			w.Biased() != g.Biased() || w.Suspended() != g.Suspended() {
			t.Fatalf("instance %s flags differ (%d/%d, done %v/%v)", w.ID(), w.Version(), g.Version(), w.Done(), g.Done())
		}
		wv, gv := w.View(), g.View()
		for _, id := range wv.NodeIDs() {
			if ws, gs := w.NodeState(id), g.NodeState(id); ws != gs {
				t.Fatalf("instance %s node %s: %s != %s", w.ID(), id, ws, gs)
			}
		}
		if len(wv.NodeIDs()) != len(gv.NodeIDs()) {
			t.Fatalf("instance %s view size differs", w.ID())
		}
		if len(w.HistoryEvents()) != len(g.HistoryEvents()) {
			t.Fatalf("instance %s history differs", w.ID())
		}
	}
	for _, user := range []string{"ann", "bob"} {
		if len(want.WorkItems(user)) != len(got.WorkItems(user)) {
			t.Fatalf("worklist of %s differs", user)
		}
	}
}

func openCheckpointed(t *testing.T, path string, cfg adept2.CheckpointConfig) *adept2.System {
	t.Helper()
	sys, err := adept2.Open(path, adept2.WithOrg(sim.Org()), adept2.WithCheckpointing(cfg))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestSnapshotRecoveryReplaysOnlySuffix is the core acceptance test: with
// a checkpoint present, recovery restores the snapshot and applies exactly
// the records past its sequence number — counted, not assumed.
func TestSnapshotRecoveryReplaysOnlySuffix(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.ndjson")
	cfg := adept2.CheckpointConfig{Every: -1} // manual checkpoints only

	sys := openCheckpointed(t, path, cfg)
	i1, _ := runPrefix(t, sys)
	_, snapSeq, err := sys.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if snapSeq != sys.JournalSeq() {
		t.Fatalf("checkpoint seq %d != journal seq %d", snapSeq, sys.JournalSeq())
	}
	runSuffix(t, sys, i1)
	tail := sys.JournalSeq()
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	// Recover via snapshot + suffix.
	rec := openCheckpointed(t, path, cfg)
	defer rec.Close()
	info := rec.Recovery()
	if info.FullReplay || info.SnapshotSeq != snapSeq {
		t.Fatalf("recovery did not use the snapshot: %+v", info)
	}
	if want := tail - snapSeq; info.Replayed != want {
		t.Fatalf("replayed %d records, want only the %d-record suffix", info.Replayed, want)
	}

	// The state must be identical to a full replay of the same journal.
	full, err := adept2.Open(path, adept2.WithOrg(sim.Org()))
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	if !full.Recovery().FullReplay {
		t.Fatal("plain Open must fully replay")
	}
	assertSameState(t, full, rec)

	// Work continues seamlessly on the recovered system.
	if err := rec.Complete(i1, "confirm_order", "ann", nil); err != nil {
		t.Fatalf("continue after snapshot recovery: %v", err)
	}
}

func TestRecoveryFallsBackOnTornSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.ndjson")
	cfg := adept2.CheckpointConfig{Every: -1, Keep: 10}

	sys := openCheckpointed(t, path, cfg)
	i1, _ := runPrefix(t, sys)
	if _, _, err := sys.Checkpoint(); err != nil { // older, intact snapshot
		t.Fatal(err)
	}
	runSuffix(t, sys, i1)
	file2, snapSeq2, err := sys.Checkpoint() // newest snapshot, about to be torn
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	blob, err := os.ReadFile(file2)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(file2, blob[:len(blob)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	rec := openCheckpointed(t, path, cfg)
	defer rec.Close()
	info := rec.Recovery()
	if info.SnapshotSeq == 0 || info.SnapshotSeq >= snapSeq2 {
		t.Fatalf("expected fallback to the older snapshot, got %+v", info)
	}
	if len(info.Fallbacks) == 0 || !strings.Contains(strings.Join(info.Fallbacks, ";"), "torn") {
		t.Fatalf("torn snapshot not diagnosed: %v", info.Fallbacks)
	}
	full, err := adept2.Open(path, adept2.WithOrg(sim.Org()))
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	assertSameState(t, full, rec)
}

func TestRecoveryFallsBackToFullReplayWhenAllSnapshotsCorrupt(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.ndjson")
	cfg := adept2.CheckpointConfig{Every: -1}

	sys := openCheckpointed(t, path, cfg)
	i1, _ := runPrefix(t, sys)
	file, _, err := sys.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	runSuffix(t, sys, i1)
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(file, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	rec := openCheckpointed(t, path, cfg)
	defer rec.Close()
	if !rec.Recovery().FullReplay || len(rec.Recovery().Fallbacks) == 0 {
		t.Fatalf("expected full-replay fallback: %+v", rec.Recovery())
	}
	full, err := adept2.Open(path, adept2.WithOrg(sim.Org()))
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	assertSameState(t, full, rec)
}

// TestRecoveryTornJournalTailPastSnapshot crashes mid-append after the
// checkpoint: the torn trailing record is discarded, the rest of the
// suffix replays.
func TestRecoveryTornJournalTailPastSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.ndjson")
	cfg := adept2.CheckpointConfig{Every: -1}

	sys := openCheckpointed(t, path, cfg)
	i1, _ := runPrefix(t, sys)
	_, snapSeq, err := sys.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	runSuffix(t, sys, i1)
	tail := sys.JournalSeq()
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(fmt.Sprintf(`{"seq":%d,"op":"comple`, tail+1)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rec := openCheckpointed(t, path, cfg)
	defer rec.Close()
	info := rec.Recovery()
	if info.SnapshotSeq != snapSeq || info.Replayed != tail-snapSeq {
		t.Fatalf("torn tail broke suffix replay: %+v", info)
	}
}

// TestRecoverySurvivesStaleManifest simulates a crash between the
// snapshot rename and the manifest rewrite: the manifest does not mention
// the newest snapshot, which must still be found and used.
func TestRecoverySurvivesStaleManifest(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.ndjson")
	cfg := adept2.CheckpointConfig{Every: -1, Dir: filepath.Join(dir, "snaps")}

	sys := openCheckpointed(t, path, cfg)
	i1, _ := runPrefix(t, sys)
	_, snapSeq, err := sys.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	runSuffix(t, sys, i1)
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	// The crash shapes: manifest deleted entirely, and manifest replaced
	// by an empty (older) listing.
	manifest := filepath.Join(cfg.Dir, durable.ManifestName)
	for _, corrupt := range []func() error{
		func() error { return os.Remove(manifest) },
		func() error { return os.WriteFile(manifest, []byte(`{"format":1,"snapshots":[]}`), 0o644) },
	} {
		if err := corrupt(); err != nil {
			t.Fatal(err)
		}
		rec := openCheckpointed(t, path, cfg)
		if info := rec.Recovery(); info.SnapshotSeq != snapSeq {
			t.Fatalf("stale manifest hid the snapshot: %+v", info)
		}
		rec.Close()
	}
}

// TestRecoveryEmptyJournalWithSnapshot covers full compaction (every
// record folded into the snapshot — one tombstone record remains so the
// journal stays recognizably compacted) and the genuinely empty journal
// (e.g. freshly rotated) next to a valid snapshot.
func TestRecoveryEmptyJournalWithSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.ndjson")
	cfg := adept2.CheckpointConfig{Every: -1}

	sys := openCheckpointed(t, path, cfg)
	i1, _ := runPrefix(t, sys)
	runSuffix(t, sys, i1)
	_, snapSeq, err := sys.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := adept2.Open(path, adept2.WithOrg(sim.Org()))
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()

	if _, err := durable.CompactJournal(path, snapSeq); err != nil {
		t.Fatal(err)
	}
	// Full compaction keeps the newest record as a tombstone, so a later
	// plain Open can still detect the missing prefix instead of silently
	// coming up empty.
	recs, err := persist.LoadJournal(path)
	if err != nil || len(recs) != 1 || recs[0].Seq != snapSeq {
		t.Fatalf("tombstone: recs=%+v err=%v", recs, err)
	}
	if _, err := adept2.Open(path, adept2.WithOrg(sim.Org())); err == nil || !strings.Contains(err.Error(), "compacted") {
		t.Fatalf("fully compacted journal without snapshot must refuse, got %v", err)
	}

	rec := openCheckpointed(t, path, cfg)
	info := rec.Recovery()
	if info.SnapshotSeq != snapSeq || info.Replayed != 0 {
		t.Fatalf("compacted journal + snapshot: %+v", info)
	}
	assertSameState(t, full, rec)

	// Work continues and journal seq numbers continue past the snapshot.
	if err := rec.Complete(i1, "confirm_order", "ann", nil); err != nil {
		t.Fatal(err)
	}
	if rec.JournalSeq() != snapSeq+1 {
		t.Fatalf("journal seq after compacted recovery = %d, want %d", rec.JournalSeq(), snapSeq+1)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	// A genuinely empty journal next to a valid snapshot (rotation, or a
	// pre-tombstone layout) restores the snapshot and replays nothing.
	if err := os.Truncate(path, 0); err != nil {
		t.Fatal(err)
	}
	empty := openCheckpointed(t, path, cfg)
	defer empty.Close()
	info = empty.Recovery()
	if info.FullReplay || info.SnapshotSeq != snapSeq || info.Replayed != 0 {
		t.Fatalf("empty journal + snapshot: %+v", info)
	}
	if got, ok := empty.Instance(i1); !ok || got.NodeState("confirm_order") == 0 {
		t.Fatalf("state lost across empty-journal recovery")
	}
}

// TestRecoveryRejectsSnapshotNewerThanJournal: a snapshot claiming a
// sequence number past the journal tail means the journal lost committed
// records — recovery must refuse, not silently truncate history.
func TestRecoveryRejectsSnapshotNewerThanJournal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.ndjson")
	cfg := adept2.CheckpointConfig{Every: -1}

	sys := openCheckpointed(t, path, cfg)
	i1, _ := runPrefix(t, sys)
	runSuffix(t, sys, i1)
	if _, _, err := sys.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	// Truncate the journal to half its records (simulated tail loss).
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(blob), "\n"), "\n")
	if err := os.WriteFile(path, []byte(strings.Join(lines[:len(lines)/2], "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = adept2.Open(path, adept2.WithOrg(sim.Org()), adept2.WithCheckpointing(cfg))
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("snapshot newer than journal tail must refuse recovery, got %v", err)
	}
}

// TestCompactedJournalRequiresSnapshot: once compacted, a plain full
// replay is impossible and Open must say so rather than rebuild wrong
// state.
func TestCompactedJournalRequiresSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.ndjson")
	cfg := adept2.CheckpointConfig{Every: -1}

	sys := openCheckpointed(t, path, cfg)
	i1, _ := runPrefix(t, sys)
	_, snapSeq, err := sys.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	runSuffix(t, sys, i1)
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := durable.CompactJournal(path, snapSeq); err != nil {
		t.Fatal(err)
	}

	// With the snapshot: suffix recovery works.
	rec := openCheckpointed(t, path, cfg)
	if info := rec.Recovery(); info.SnapshotSeq != snapSeq {
		t.Fatalf("recovery after compaction: %+v", info)
	}
	rec.Close()

	// Without it (plain Open, no checkpointing): hard error.
	if _, err := adept2.Open(path, adept2.WithOrg(sim.Org())); err == nil || !strings.Contains(err.Error(), "compacted") {
		t.Fatalf("compacted journal without snapshot must fail, got %v", err)
	}
}

// TestConcurrentAppendDuringBackgroundSnapshot hammers journaled commands
// from several goroutines with a tiny snapshot threshold and group commit
// enabled, then recovers and cross-checks against a full replay. Run under
// -race in CI.
func TestConcurrentAppendDuringBackgroundSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.ndjson")
	cfg := adept2.CheckpointConfig{Every: 8, Keep: 2, GroupCommit: true}

	sys := openCheckpointed(t, path, cfg)
	if err := sys.Deploy(sim.OnlineOrder()); err != nil {
		t.Fatal(err)
	}
	const workers, each = 4, 12
	var wg sync.WaitGroup
	errs := make(chan error, workers*each)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				inst, err := sys.CreateInstance("online_order")
				if err != nil {
					errs <- err
					return
				}
				if err := sys.Complete(inst.ID(), "get_order", "ann", map[string]any{"out": "o"}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := sys.WaitCheckpoints(); err != nil {
		t.Fatalf("background snapshot failed: %v", err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	rec := openCheckpointed(t, path, cfg)
	defer rec.Close()
	info := rec.Recovery()
	if info.SnapshotSeq == 0 {
		t.Fatalf("no background snapshot was used: %+v", info)
	}
	full, err := adept2.Open(path, adept2.WithOrg(sim.Org()))
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	if len(rec.Instances()) != workers*each || len(full.Instances()) != workers*each {
		t.Fatalf("instances: rec=%d full=%d", len(rec.Instances()), len(full.Instances()))
	}
	assertSameState(t, full, rec)
}

// TestGroupCommitEndToEnd drives the facade with group commit (no
// snapshots) and verifies every command survives recovery.
func TestGroupCommitEndToEnd(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.ndjson")
	cfg := adept2.CheckpointConfig{Every: -1, GroupCommit: true}

	sys := openCheckpointed(t, path, cfg)
	i1, _ := runPrefix(t, sys)
	runSuffix(t, sys, i1)
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	full, err := adept2.Open(path, adept2.WithOrg(sim.Org()))
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	rec := openCheckpointed(t, path, cfg)
	defer rec.Close()
	assertSameState(t, full, rec)
}

// TestClaimsSurviveSnapshotRecovery: work-item claims are not journaled
// (full replay loses them) but a snapshot preserves them — the recovered
// worklist keeps pre-crash item IDs and reservations.
func TestClaimsSurviveSnapshotRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.ndjson")
	cfg := adept2.CheckpointConfig{Every: -1}

	sys := openCheckpointed(t, path, cfg)
	if err := sys.Deploy(sim.OnlineOrder()); err != nil {
		t.Fatal(err)
	}
	inst, err := sys.CreateInstance("online_order")
	if err != nil {
		t.Fatal(err)
	}
	items := sys.WorkItems("ann")
	if len(items) == 0 {
		t.Fatal("no work items")
	}
	if err := sys.Claim(items[0].ID, "ann"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	rec := openCheckpointed(t, path, cfg)
	defer rec.Close()
	got := rec.WorkItems("ann")
	if len(got) != 1 || got[0].ID != items[0].ID || got[0].ClaimedBy != "ann" {
		t.Fatalf("claim lost: %+v", got)
	}
	_ = inst
}

// TestFailedRestoreDoesNotPoisonFallback: a snapshot that passes checksum
// validation but fails mid-restore (corrupt bias payload) must fall back
// to full replay with a clean slate — earlier the half-restored users
// leaked into the shared org model and made the fallback fail with
// duplicate-ID errors.
func TestFailedRestoreDoesNotPoisonFallback(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.ndjson")
	cfg := adept2.CheckpointConfig{Every: -1, Dir: filepath.Join(dir, "snaps")}

	sys := openCheckpointed(t, path, cfg)
	i1, _ := runPrefix(t, sys) // includes a biased instance
	if _, _, err := sys.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	// Forge a checksum-valid snapshot whose restore fails: corrupt the
	// biased instance's ops payload and rewrite through the store (which
	// recomputes the CRC).
	store, err := durable.OpenStore(cfg.Dir)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := store.Entries()
	if err != nil || len(entries) == 0 {
		t.Fatalf("entries=%v err=%v", entries, err)
	}
	st, err := store.Load(entries[len(entries)-1])
	if err != nil {
		t.Fatal(err)
	}
	poisoned := false
	for _, inst := range st.Instances {
		if len(inst.Bias) > 0 {
			inst.Bias = []byte(`[{"op":"no-such-op","args":{}}]`)
			poisoned = true
		}
	}
	if !poisoned {
		t.Fatal("scenario needs a biased instance")
	}
	if _, err := store.Write(st); err != nil {
		t.Fatal(err)
	}

	rec := openCheckpointed(t, path, cfg)
	defer rec.Close()
	info := rec.Recovery()
	if !info.FullReplay || len(info.Fallbacks) == 0 {
		t.Fatalf("expected clean full-replay fallback, got %+v", info)
	}
	if _, ok := rec.Instance(i1); !ok {
		t.Fatal("state missing after fallback")
	}
}
