// Package vfs provides the filesystem abstraction under the durability
// stack (internal/persist, internal/durable, internal/durable/sharded)
// with three backends: the passthrough OS backend (OS), an in-memory
// filesystem with an explicit crash model (MemFS), and a fault-injecting
// wrapper (FaultFS) that runs every operation through a scripted
// schedule. The production path pays one interface indirection per
// operation; everything else exists so tests can torture the durability
// layer the way a hostile disk would.
//
// # Fault schedules
//
// A FaultFS counts every intercepted operation (1-based, globally across
// the FS and all files opened through it) and asks its Script for a
// Decision per operation:
//
//   - Decision{} lets the operation through.
//   - Decision{Err: e} fails it with e. The script sees the operation
//     counter, so transient faults (fail once, pass on retry) and
//     persistent faults (fail forever after N) are both expressible —
//     see FailNth and FailFrom.
//   - Decision{Err: e, TornPrefix: k} on a write persists only the
//     first k bytes before failing — a torn write, the case journal
//     tail repair exists for.
//   - Decision{Crash: true} simulates power loss at this exact
//     operation: the inner filesystem reverts to its durable state
//     (Crasher.Crash), and this plus every later operation fails with
//     ErrCrashed. Close is never intercepted (it performs no I/O the
//     crash model cares about), so crash sites are exactly the
//     operations whose loss a journaled system must tolerate.
//
// The operation counter makes exhaustive crash-point testing mechanical:
// run a workload once against a pass-through script to learn the total
// operation count N (OpCount), then run it N more times with CrashAt(i)
// for every i, recovering from the survived state each time.
//
// # Crash model (MemFS)
//
// MemFS tracks, per file, the live byte content and the content covered
// by the last File.Sync, and per directory, the live entry table and the
// durable one. Crash() reverts the filesystem to the durable view —
// synced contents under durable names — and invalidates every open
// handle (ErrStaleHandle), so goroutines of an abandoned pre-crash
// system cannot write into the post-crash state.
//
// Durability follows the relaxed model journaling filesystems provide in
// practice (ext4 ordered mode), which is what the journal's create-
// append-fsync pattern relies on:
//
//   - File.Sync persists the file's bytes AND its current directory
//     entry. A freshly created, fsynced journal file survives a crash
//     without a separate directory fsync.
//   - Rename and Remove become durable only at the next SyncDir of the
//     parent directory (or a later File.Sync through the renamed name).
//     A crash between rename and directory sync revives the old
//     binding — the torn-rename window AtomicWrite's dir-fsync closes.
//   - A never-synced file whose directory was synced survives as an
//     empty file (the entry was durable, the content never was).
//   - Directories themselves are durable on creation, and RemoveAll is
//     durable immediately (simplifications; only offline maintenance
//     paths use them).
package vfs
