package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders a Snapshot in the Prometheus text exposition
// format (version 0.0.4): every family gets # HELP/# TYPE headers,
// histograms render cumulative le buckets with _sum in seconds for
// nanosecond-unit families, and label values are escaped. The renderer
// works from a Snapshot, not the live Set, so /metrics and
// /metrics.json always describe the same instant.
func WritePrometheus(w io.Writer, s *Snapshot) error {
	pw := &promWriter{w: w}

	pw.header("adept2_submit_total", "counter", "Commands submitted, by op and outcome code (ok = applied).")
	for _, op := range sortedOps(s.Ops) {
		o := s.Ops[op]
		pw.val("adept2_submit_total", lbl("op", op, "code", "ok"), float64(o.OK))
		for _, code := range sortedKeys(o.Errors) {
			pw.val("adept2_submit_total", lbl("op", op, "code", code), float64(o.Errors[code]))
		}
	}
	pw.header("adept2_submit_latency_seconds", "histogram", "Synchronous submit latency (apply + stage), successful singular submits.")
	for _, op := range sortedOps(s.Ops) {
		pw.histogram("adept2_submit_latency_seconds", lbl("op", op), s.Ops[op].Latency, 1e-9)
	}

	pw.header("adept2_batch_commands", "histogram", "Data commands per SubmitBatch run.")
	pw.histogram("adept2_batch_commands", "", s.Batch.Size, 1)
	pw.header("adept2_batch_append_seconds", "histogram", "Append + durability wait per SubmitBatch run.")
	pw.histogram("adept2_batch_append_seconds", "", s.Batch.Nanos, 1e-9)

	pw.header("adept2_shard_appends_total", "counter", "Live-path journal records staged, per shard.")
	for _, sh := range s.Shards {
		pw.val("adept2_shard_appends_total", lbl("shard", strconv.Itoa(sh.Shard)), float64(sh.Appends))
	}
	pw.header("adept2_shard_seq", "gauge", "Shard journal head sequence number.")
	for _, sh := range s.Shards {
		pw.val("adept2_shard_seq", lbl("shard", strconv.Itoa(sh.Shard)), float64(sh.Seq))
	}
	pw.header("adept2_shard_append_depth", "gauge", "Staged-but-unflushed records per shard (group-commit backlog).")
	for _, sh := range s.Shards {
		pw.val("adept2_shard_append_depth", lbl("shard", strconv.Itoa(sh.Shard)), float64(sh.Depth))
	}
	pw.header("adept2_shard_wedged", "gauge", "1 while the shard's committer is wedged.")
	for _, sh := range s.Shards {
		pw.val("adept2_shard_wedged", lbl("shard", strconv.Itoa(sh.Shard)), b2f(sh.Wedged))
	}

	pw.header("adept2_committer_fsync_seconds", "histogram", "Group-commit flush attempt duration, all shards.")
	pw.histogram("adept2_committer_fsync_seconds", "", s.Committer.Fsync, 1e-9)
	pw.header("adept2_committer_batch_records", "histogram", "Records covered per successful flush (batch occupancy).")
	pw.histogram("adept2_committer_batch_records", "", s.Committer.BatchRecords, 1)
	pw.header("adept2_committer_flush_retries_total", "counter", "Flush attempts beyond each batch's first.")
	pw.val("adept2_committer_flush_retries_total", "", float64(s.Committer.FlushRetries))
	pw.header("adept2_committer_wedges_total", "counter", "Committers entering the wedged state.")
	pw.val("adept2_committer_wedges_total", "", float64(s.Committer.Wedges))
	pw.header("adept2_committer_heals_total", "counter", "Successful heals of wedged committers.")
	pw.val("adept2_committer_heals_total", "", float64(s.Committer.Heals))

	pw.header("adept2_checkpoint_total", "counter", "Checkpoint attempts.")
	pw.val("adept2_checkpoint_total", "", float64(s.Checkpoint.Count))
	pw.header("adept2_checkpoint_failures_total", "counter", "Failed checkpoint attempts.")
	pw.val("adept2_checkpoint_failures_total", "", float64(s.Checkpoint.Failures))
	pw.header("adept2_checkpoint_seconds", "histogram", "Checkpoint duration (capture + write + commit).")
	pw.histogram("adept2_checkpoint_seconds", "", s.Checkpoint.Nanos, 1e-9)
	pw.header("adept2_snapshot_bytes_written_total", "counter", "Snapshot bytes written, all stores.")
	pw.val("adept2_snapshot_bytes_written_total", "", float64(s.Checkpoint.BytesWritten))
	pw.header("adept2_snapshot_bytes_read_total", "counter", "Snapshot bytes read during recovery, all stores.")
	pw.val("adept2_snapshot_bytes_read_total", "", float64(s.Checkpoint.BytesRead))

	pw.header("adept2_recovery_seconds_total", "counter", "Time spent in Open-time recovery.")
	pw.val("adept2_recovery_seconds_total", "", float64(s.Recovery.Nanos)*1e-9)
	pw.header("adept2_recovery_replayed_total", "counter", "Journal records replayed during recovery.")
	pw.val("adept2_recovery_replayed_total", "", float64(s.Recovery.Replayed))
	pw.header("adept2_recovery_fallbacks_total", "counter", "Snapshots/generations rejected during recovery.")
	pw.val("adept2_recovery_fallbacks_total", "", float64(s.Recovery.Fallbacks))
	pw.header("adept2_recovery_full_replays_total", "counter", "Recoveries that fell back to a full journal replay.")
	pw.val("adept2_recovery_full_replays_total", "", float64(s.Recovery.FullReplays))

	pw.header("adept2_exception_failures_total", "counter", "Activity failures journaled.")
	pw.val("adept2_exception_failures_total", "", float64(s.Exception.Failures))
	pw.header("adept2_exception_timeouts_total", "counter", "Deadline expiries journaled.")
	pw.val("adept2_exception_timeouts_total", "", float64(s.Exception.Timeouts))
	pw.header("adept2_exception_retries_total", "counter", "Retry re-offers journaled.")
	pw.val("adept2_exception_retries_total", "", float64(s.Exception.Retries))
	pw.header("adept2_exception_escalations_total", "counter", "Work-item escalations (deadline expiries fired).")
	pw.val("adept2_exception_escalations_total", "", float64(s.Exception.Escalations))
	pw.header("adept2_exception_policy_actions_total", "counter", "Exception-policy decisions, by action.")
	for _, a := range sortedKeys(s.Exception.Actions) {
		pw.val("adept2_exception_policy_actions_total", lbl("action", a), float64(s.Exception.Actions[a]))
	}
	pw.header("adept2_exception_compensated_total", "counter", "Compensating commands submitted by sweeps.")
	pw.val("adept2_exception_compensated_total", "", float64(s.Exception.Compensated))

	pw.header("adept2_sweep_total", "counter", "Deadline sweeps run.")
	pw.val("adept2_sweep_total", "", float64(s.Exception.Sweeps))
	pw.header("adept2_sweep_errors_total", "counter", "Non-moot submit errors collected by sweeps.")
	pw.val("adept2_sweep_errors_total", "", float64(s.Exception.SweepErrors))
	pw.header("adept2_sweep_seconds", "histogram", "Deadline sweep duration.")
	pw.histogram("adept2_sweep_seconds", "", s.Exception.SweepNanos, 1e-9)
	pw.header("adept2_sweep_lag_seconds", "gauge", "Latest timer sweep's due-to-done lag.")
	pw.val("adept2_sweep_lag_seconds", "", float64(s.Exception.SweepLagNanos)*1e-9)

	pw.header("adept2_rpc_requests_total", "counter", "RPC requests answered, by endpoint and outcome.")
	for _, ep := range sortedRPC(s.RPC.Endpoints) {
		e := s.RPC.Endpoints[ep]
		pw.val("adept2_rpc_requests_total", lbl("endpoint", ep, "code", "ok"), float64(e.Requests-e.Failures))
		if e.Failures > 0 {
			pw.val("adept2_rpc_requests_total", lbl("endpoint", ep, "code", "error"), float64(e.Failures))
		}
	}
	pw.header("adept2_rpc_request_seconds", "histogram", "RPC handler duration, by endpoint.")
	for _, ep := range sortedRPC(s.RPC.Endpoints) {
		pw.histogram("adept2_rpc_request_seconds", lbl("endpoint", ep), s.RPC.Endpoints[ep].Latency, 1e-9)
	}
	pw.header("adept2_rpc_open_streams", "gauge", "Connected NDJSON stream subscribers (watermarks + control-log tails).")
	pw.val("adept2_rpc_open_streams", "", float64(s.RPC.OpenStreams))
	pw.header("adept2_rpc_stream_events_total", "counter", "Lines pushed to stream subscribers (receipt-resolution fan-out).")
	pw.val("adept2_rpc_stream_events_total", "", float64(s.RPC.StreamEvents))
	pw.header("adept2_rpc_decode_errors_total", "counter", "Wire envelopes rejected before dispatch.")
	pw.val("adept2_rpc_decode_errors_total", "", float64(s.RPC.DecodeErrors))

	pw.header("adept2_instances", "gauge", "Instances resident in the engine.")
	pw.val("adept2_instances", "", float64(s.Engine.Instances))
	pw.header("adept2_worklist_depth", "gauge", "Offered work items across all users.")
	pw.val("adept2_worklist_depth", "", float64(s.Engine.WorklistDepth))
	pw.header("adept2_open_exceptions", "gauge", "Detected-but-uncompensated exceptions.")
	pw.val("adept2_open_exceptions", "", float64(s.Engine.OpenExceptions))

	pw.header("adept2_wedged", "gauge", "1 while the write path is wedged (read-only degraded serving).")
	pw.val("adept2_wedged", "", b2f(s.Health.Wedged))
	pw.header("adept2_checkpoint_failing", "gauge", "1 while the background checkpointer's last attempt failed.")
	pw.val("adept2_checkpoint_failing", "", b2f(s.Health.CheckpointErr != ""))
	pw.header("adept2_cleanup_errors_total", "counter", "Failed removals of stale snapshot/temp files.")
	pw.val("adept2_cleanup_errors_total", "", float64(s.Health.CleanupErrs))
	pw.header("adept2_flush_retries_total", "counter", "Transient flush failures absorbed (HealthInfo view).")
	pw.val("adept2_flush_retries_total", "", float64(s.Health.FlushRetries))

	return pw.err
}

type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err == nil {
		_, p.err = fmt.Fprintf(p.w, format, args...)
	}
}

func (p *promWriter) header(name, typ, help string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p *promWriter) val(name, labels string, v float64) {
	p.printf("%s%s %s\n", name, labels, fmtFloat(v))
}

// histogram renders cumulative le buckets; unit scales the stored
// observation units into the exposed ones (1e-9 for nanos → seconds).
func (p *promWriter) histogram(name, labels string, h HistogramSnapshot, unit float64) {
	cum := int64(0)
	sawInf := false
	for i, n := range h.Buckets {
		cum += n
		le := "+Inf"
		if h.Bounds[i] >= 0 {
			le = fmtFloat(float64(h.Bounds[i]) * unit)
		} else {
			sawInf = true
			cum = h.Count // a torn snapshot may drift; +Inf must equal count
		}
		p.printf("%s_bucket%s %d\n", name, mergeLabels(labels, "le", le), cum)
	}
	if !sawInf {
		// The snapshot trims trailing empty buckets, so a finite bound
		// usually ends the list; the format requires a +Inf bucket equal
		// to _count on every histogram.
		p.printf("%s_bucket%s %d\n", name, mergeLabels(labels, "le", "+Inf"), h.Count)
	}
	p.printf("%s_sum%s %s\n", name, labels, fmtFloat(float64(h.Sum)*unit))
	p.printf("%s_count%s %d\n", name, labels, h.Count)
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// lbl renders a label set from alternating key/value strings.
func lbl(kv ...string) string {
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// mergeLabels appends one more label to an already-rendered set.
func mergeLabels(labels, k, v string) string {
	extra := k + `="` + escapeLabel(v) + `"`
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func sortedOps(m map[string]OpSnapshot) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedRPC(m map[string]RPCEndpointSnapshot) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
