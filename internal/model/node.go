package model

import "fmt"

// NodeType enumerates the node kinds of the ADEPT2 meta model. Process
// schemas are block-structured: every split node has exactly one matching
// join node of the corresponding type, and blocks are properly nested.
type NodeType uint8

const (
	// NodeActivity is a regular work item carried out by a user or an
	// application component.
	NodeActivity NodeType = iota
	// NodeStart is the unique source node of a schema.
	NodeStart
	// NodeEnd is the unique sink node of a schema.
	NodeEnd
	// NodeANDSplit opens a parallel block; all outgoing branches execute.
	NodeANDSplit
	// NodeANDJoin closes a parallel block; it waits for all branches.
	NodeANDJoin
	// NodeXORSplit opens a conditional block; exactly one branch executes,
	// selected by the decision code of the split.
	NodeXORSplit
	// NodeXORJoin closes a conditional block.
	NodeXORJoin
	// NodeLoopStart opens a loop block (ADEPT loops are do-while: the body
	// executes at least once).
	NodeLoopStart
	// NodeLoopEnd closes a loop block and decides whether to iterate again
	// (signalling the loop edge back to the matching NodeLoopStart).
	NodeLoopEnd
)

var nodeTypeNames = [...]string{
	NodeActivity:  "activity",
	NodeStart:     "start",
	NodeEnd:       "end",
	NodeANDSplit:  "and-split",
	NodeANDJoin:   "and-join",
	NodeXORSplit:  "xor-split",
	NodeXORJoin:   "xor-join",
	NodeLoopStart: "loop-start",
	NodeLoopEnd:   "loop-end",
}

func (t NodeType) String() string {
	if int(t) < len(nodeTypeNames) {
		return nodeTypeNames[t]
	}
	return fmt.Sprintf("node-type(%d)", uint8(t))
}

// IsSplit reports whether the node type opens a block.
func (t NodeType) IsSplit() bool {
	return t == NodeANDSplit || t == NodeXORSplit || t == NodeLoopStart
}

// IsJoin reports whether the node type closes a block.
func (t NodeType) IsJoin() bool {
	return t == NodeANDJoin || t == NodeXORJoin || t == NodeLoopEnd
}

// IsGateway reports whether the node type is a routing construct rather
// than a work item.
func (t NodeType) IsGateway() bool {
	return t.IsSplit() || t.IsJoin()
}

// MatchingJoin returns the join type that closes a block opened by t.
func (t NodeType) MatchingJoin() (NodeType, bool) {
	switch t {
	case NodeANDSplit:
		return NodeANDJoin, true
	case NodeXORSplit:
		return NodeXORJoin, true
	case NodeLoopStart:
		return NodeLoopEnd, true
	}
	return 0, false
}

// Node is a schema node. Nodes are identified by a schema-unique ID.
type Node struct {
	ID   string
	Name string
	Type NodeType

	// Role is the staff assignment: the organizational role whose members
	// may work on the activity. Empty means the node is executed by the
	// system (all gateways, silent activities).
	Role string

	// Template names the reusable activity template the node instantiates.
	// It is used for semantical conflict detection during migration (two
	// changes inserting the same template into overlapping regions).
	Template string

	// Auto marks nodes the engine starts and completes automatically as
	// soon as they become activated (gateways and silent activities).
	Auto bool

	// DecisionElement names the data element an automatic NodeXORSplit or
	// NodeLoopEnd consults for its routing decision. For an XOR split the
	// element's integer value selects the outgoing edge code; for a loop
	// end a true boolean value repeats the loop.
	DecisionElement string

	// MaxIterations bounds loop execution for NodeLoopEnd (safety net for
	// automatic loops; 0 means unbounded).
	MaxIterations int

	// Duration is a nominal duration hint in abstract ticks, used by the
	// workload simulator. It has no semantic meaning.
	Duration int

	// Deadline is the activity's relative completion deadline in
	// nanoseconds, armed at the moment the activity starts. 0 means the
	// activity has no deadline. When a running activity exceeds its
	// armed deadline the engine appends a Timeout event and escalates
	// the work item.
	Deadline int64

	// Escalation names the role a timed-out activity's work item is
	// re-offered to. Empty means the item stays with (is re-offered to)
	// the original Role.
	Escalation string
}

// Clone returns a copy of the node.
func (n *Node) Clone() *Node {
	c := *n
	return &c
}

// CanAutoExecute reports whether the engine may start and complete the
// node without user interaction: the node is automatic and — for decision
// gateways — able to derive its routing decision on its own. The engine's
// execution cascade and the compliance replay share this predicate so
// migration behaves exactly like live execution.
func (n *Node) CanAutoExecute() bool {
	if !n.Auto {
		return false
	}
	switch n.Type {
	case NodeXORSplit:
		return n.DecisionElement != ""
	case NodeLoopEnd:
		return n.DecisionElement != "" || n.MaxIterations == 1
	case NodeStart, NodeEnd:
		return false // handled specially by the engine
	default:
		return true
	}
}

func (n *Node) String() string {
	if n.Name != "" && n.Name != n.ID {
		return fmt.Sprintf("%s[%s %q]", n.ID, n.Type, n.Name)
	}
	return fmt.Sprintf("%s[%s]", n.ID, n.Type)
}
