package state

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"adept2/internal/graph"
	"adept2/internal/model"
	"adept2/internal/storage"
)

// The tests in this file pin the tentpole invariant of the incremental
// evaluator: edge-driven propagation (Evaluate/Adapt) produces markings
// identical — node states, edge signals, and skip stamps — to the retained
// global fixpoint reference (evaluateFixpoint), on randomized schemas with
// XOR/AND blocks, loops, and sync edges, across random event prefixes and
// biased overlay views.

// richFrag is a generated fragment plus the activity IDs inside it, so the
// generator can attach sync edges across parallel branches.
type richFrag struct {
	frag model.Fragment
	acts []string
}

// genRichSchema builds a random block-structured schema featuring
// sequences, parallel and conditional blocks, do-while loops, and sync
// edges between sibling parallel branches.
func genRichSchema(rng *rand.Rand, name string) *model.Schema {
	b := model.NewBuilder(name)
	seq := 0
	newAct := func() richFrag {
		seq++
		id := fmt.Sprintf("a%d", seq)
		return richFrag{frag: b.Activity(id, "A", model.WithRole("r")), acts: []string{id}}
	}
	var gen func(depth int) richFrag
	gen = func(depth int) richFrag {
		if depth <= 0 {
			return newAct()
		}
		switch rng.Intn(5) {
		case 0:
			return newAct()
		case 1: // sequence
			l, r := gen(depth-1), gen(depth-1)
			return richFrag{
				frag: b.Seq(l.frag, r.frag),
				acts: append(l.acts, r.acts...),
			}
		case 2: // parallel, optionally with one cross-branch sync edge
			l, r := gen(depth-1), gen(depth-1)
			f := b.Parallel(l.frag, r.frag)
			if len(l.acts) > 0 && len(r.acts) > 0 && rng.Intn(2) == 0 {
				from := l.acts[rng.Intn(len(l.acts))]
				to := r.acts[rng.Intn(len(r.acts))]
				b.Sync(from, to)
			}
			return richFrag{frag: f, acts: append(l.acts, r.acts...)}
		case 3: // conditional
			l, r := gen(depth-1), gen(depth-1)
			return richFrag{
				frag: b.Choice("", l.frag, r.frag),
				acts: append(l.acts, r.acts...),
			}
		default: // do-while loop
			body := gen(depth - 1)
			return richFrag{frag: b.Loop(body.frag, "", 0), acts: body.acts}
		}
	}
	root := gen(3)
	s, err := b.Build(root.frag)
	if err != nil {
		panic(err)
	}
	return s
}

// markingsIdentical compares two markings exhaustively over a view: node
// states, edge signals, and skip stamps.
func markingsIdentical(v model.SchemaView, a, b *Marking) bool {
	for _, id := range v.NodeIDs() {
		if a.Node(id) != b.Node(id) || a.SkipSeq(id) != b.SkipSeq(id) {
			return false
		}
	}
	for _, e := range v.Edges() {
		if a.Edge(e.Key()) != b.Edge(e.Key()) {
			return false
		}
	}
	return true
}

func sortedCopy(ids []string) []string {
	c := append([]string(nil), ids...)
	sort.Strings(c)
	return c
}

func sameSet(a, b []string) bool {
	a, b = sortedCopy(a), sortedCopy(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// dualRun drives one random partial execution on two markings in lockstep:
// mInc evolves through the incremental Evaluate, mRef through the global
// fixpoint reference. It fails the test at the first divergence and
// returns the final state plus the XOR decision record.
func dualRun(t *testing.T, rng *rand.Rand, v model.SchemaView, info *graph.Info) (mInc, mRef *Marking, decisions map[string]int) {
	t.Helper()
	mInc, mRef = NewMarking(), NewMarking()
	mInc.Init(v)
	mRef.Init(v)
	actInc := Evaluate(v, mInc, 1)
	actRef := evaluateFixpoint(v, mRef, 1)
	if !sameSet(actInc, actRef) {
		t.Fatalf("init activation sets diverge: inc=%v ref=%v", actInc, actRef)
	}
	decisions = map[string]int{}
	loopIters := map[string]int{}

	for step := 0; step < 60; step++ {
		enabled := mInc.NodesInState(Activated)
		if !sameSet(enabled, mRef.NodesInState(Activated)) {
			t.Fatalf("step %d: enabled sets diverge: inc=%v ref=%v", step, enabled, mRef.NodesInState(Activated))
		}
		if len(enabled) == 0 {
			break
		}
		id := enabled[rng.Intn(len(enabled))]
		if err := mInc.Start(id); err != nil {
			t.Fatalf("step %d: start inc: %v", step, err)
		}
		if err := mRef.Start(id); err != nil {
			t.Fatalf("step %d: start ref: %v", step, err)
		}
		node, _ := v.Node(id)
		dec := -1
		if node.Type == model.NodeXORSplit {
			outs := model.OutControlEdges(v, id)
			dec = outs[rng.Intn(len(outs))].Code
			decisions[id] = dec
		}
		seq := step + 2
		if node.Type == model.NodeLoopEnd && loopIters[id] < 1 && rng.Intn(2) == 0 {
			// Iterate the loop once: both markings are completed and reset
			// identically, exercising the worklist seeding of ResetLoop.
			loopIters[id]++
			blk, ok := info.ByJoin(id)
			if !ok {
				t.Fatalf("loop end %s has no block", id)
			}
			// The engine resets without completing (the iterating
			// completion only exists in the history); mirror that.
			region := blk.Region()
			ResetLoop(v, mInc, region)
			ResetLoop(v, mRef, region)
			for n := range region {
				delete(decisions, n)
			}
		} else {
			if err := mInc.Complete(v, id, dec); err != nil {
				t.Fatalf("step %d: complete inc: %v", step, err)
			}
			if err := mRef.Complete(v, id, dec); err != nil {
				t.Fatalf("step %d: complete ref: %v", step, err)
			}
		}
		actInc = Evaluate(v, mInc, seq)
		actRef = evaluateFixpoint(v, mRef, seq)
		if !sameSet(actInc, actRef) {
			t.Fatalf("step %d: activation sets diverge: inc=%v ref=%v", step, actInc, actRef)
		}
		if !markingsIdentical(v, mInc, mRef) {
			t.Fatalf("step %d: markings diverge after completing %s", step, id)
		}
	}
	return mInc, mRef, decisions
}

// TestIncrementalMatchesFixpoint: on random schemas and random event
// prefixes, incremental propagation and the global fixpoint produce
// identical markings after every single event.
func TestIncrementalMatchesFixpoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := genRichSchema(rng, "p")
		info, err := graph.Analyze(s)
		if err != nil {
			panic(err)
		}
		mInc, mRef, _ := dualRun(t, rng, s, info)
		return markingsIdentical(s, mInc, mRef)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestAdaptMatchesFixpoint: state adaptation through the incremental
// evaluator equals the adaptation closed by the fixpoint reference, on the
// unchanged schema (identity adaptation) after a random prefix.
func TestAdaptMatchesFixpoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := genRichSchema(rng, "p")
		info, err := graph.Analyze(s)
		if err != nil {
			panic(err)
		}
		mInc, mRef, decisions := dualRun(t, rng, s, info)
		before := mInc.Clone()

		actInc := Adapt(s, mInc, decisions, 99)
		adaptCore(s, mRef, decisions)
		actRef := evaluateFixpoint(s, mRef, 99)
		for id := range mRef.skipSeq {
			if mRef.Node(id) != Skipped {
				delete(mRef.skipSeq, id)
			}
		}
		if !sameSet(actInc, actRef) {
			t.Fatalf("adapt activation sets diverge: inc=%v ref=%v", actInc, actRef)
		}
		// Identity adaptation must also reproduce the pre-adapt marking
		// (modulo skip stamps, which Adapt re-stamps with the adapt seq).
		for _, id := range s.NodeIDs() {
			if before.Node(id) != mInc.Node(id) {
				t.Fatalf("identity adaptation changed node %s: %s -> %s", id, before.Node(id), mInc.Node(id))
			}
		}
		return markingsIdentical(s, mInc, mRef)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestAdaptMatchesFixpointOnBiasedOverlay: after a random prefix, the view
// is biased through a storage overlay (a serial insert of an automatic
// activity splitting a random control edge, the canonical ad-hoc change),
// and both adaptation paths must agree on the overlaid view.
func TestAdaptMatchesFixpointOnBiasedOverlay(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := genRichSchema(rng, "p")
		info, err := graph.Analyze(base)
		if err != nil {
			panic(err)
		}
		mInc, mRef, decisions := dualRun(t, rng, base, info)

		ov := storage.NewOverlay(base)
		var ctrl []*model.Edge
		for _, e := range base.Edges() {
			if e.Type == model.EdgeControl {
				ctrl = append(ctrl, e)
			}
		}
		split := ctrl[rng.Intn(len(ctrl))]
		ins := &model.Node{ID: "bias_x", Name: "bias_x", Type: model.NodeActivity, Auto: true, Template: "bias_x"}
		if err := ov.RemoveEdge(split.Key()); err != nil {
			panic(err)
		}
		if err := ov.AddNode(ins); err != nil {
			panic(err)
		}
		if err := ov.AddEdge(&model.Edge{From: split.From, To: ins.ID, Type: model.EdgeControl, Code: split.Code}); err != nil {
			panic(err)
		}
		if err := ov.AddEdge(&model.Edge{From: ins.ID, To: split.To, Type: model.EdgeControl}); err != nil {
			panic(err)
		}

		actInc := Adapt(ov, mInc, decisions, 99)
		adaptCore(ov, mRef, decisions)
		actRef := evaluateFixpoint(ov, mRef, 99)
		for id := range mRef.skipSeq {
			if mRef.Node(id) != Skipped {
				delete(mRef.skipSeq, id)
			}
		}
		if !sameSet(actInc, actRef) {
			t.Fatalf("biased adapt activation sets diverge: inc=%v ref=%v", actInc, actRef)
		}
		return markingsIdentical(ov, mInc, mRef)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestEvaluateAfterManualStaging: hand-staged marking mutations through
// SetNode/SetEdge (the way compliance tests stage scenarios: mark a node
// completed and signal its outgoing edges) queue exactly the affected
// nodes; the next Evaluate must agree with the fixpoint run on a clone.
//
// Note the staging must be *consistent* — a true-signaled edge implies a
// completed source. On corrupted markings (e.g. a true signal from a node
// that a cascade later skips) neither evaluator is order-independent; that
// was equally true of the historical global fixpoint, whose outcome then
// depended on the schema scan order.
func TestEvaluateAfterManualStaging(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := genRichSchema(rng, "p")
		m := NewMarking()
		m.Init(s)
		Evaluate(s, m, 1)
		ids := s.NodeIDs()
		for i := 0; i < 2; i++ {
			id := ids[rng.Intn(len(ids))]
			if m.Node(id) != NotActivated {
				continue
			}
			n, _ := s.Node(id)
			if n.Type == model.NodeStart || n.Type == model.NodeEnd {
				continue
			}
			m.SetNode(id, Completed)
			outs := model.OutControlEdges(s, id)
			pick := -1
			if n.Type == model.NodeXORSplit && len(outs) > 0 {
				pick = rng.Intn(len(outs))
			}
			for j, e := range outs {
				if pick >= 0 && j != pick {
					m.SetEdge(e.Key(), FalseSignaled)
				} else {
					m.SetEdge(e.Key(), TrueSignaled)
				}
			}
			for _, e := range model.SyncSuccs(s, id) {
				m.SetEdge(model.EdgeKey{From: id, To: e, Type: model.EdgeSync}, TrueSignaled)
			}
		}
		ref := m.Clone()
		incAct := Evaluate(s, m, 7)
		refAct := evaluateFixpoint(s, ref, 7)
		if !sameSet(incAct, refAct) {
			return false
		}
		return markingsIdentical(s, m, ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
