// Package compliance implements the ADEPT2 compliance criterion for
// dynamic process changes: a running instance may adopt a changed schema
// iff its loop-reduced execution history could have been produced on that
// schema (relaxed trace equivalence — entries for newly inserted automatic
// nodes may be interleaved, entries of deleted nodes must not exist).
//
// Replay is the ground-truth checker: it re-executes the reduced history
// on the target schema view event by event. The fast path — the
// per-operation conditions of Fig. 1, implemented on each operation in
// internal/change — answers the same question in O(affected nodes) using
// the instance's marking and execution index; CheckFast evaluates it.
// Property-based tests assert that both paths agree.
package compliance

import (
	"fmt"

	"adept2/internal/change"
	"adept2/internal/data"
	"adept2/internal/graph"
	"adept2/internal/history"
	"adept2/internal/model"
	"adept2/internal/state"
)

// Error reports why a history is not replayable on a schema view.
type Error struct {
	// Event is the first history event that could not be reproduced (nil
	// when the failure is not event-specific).
	Event *history.Event
	// Reason explains the failure.
	Reason string
}

func (e *Error) Error() string {
	if e.Event != nil {
		return fmt.Sprintf("compliance: event %s: %s", e.Event, e.Reason)
	}
	return "compliance: " + e.Reason
}

// ReplayResult carries the state reconstructed by a successful replay.
type ReplayResult struct {
	// Marking is the instance marking after replaying the full history on
	// the target view — i.e. the adapted state a migrated instance
	// receives.
	Marking *state.Marking
	// Store holds the data versions reconstructed from the history.
	Store *data.Store
	// VirtualFirings counts how many newly inserted automatic nodes had to
	// be interleaved (a measure of how much the change affected the
	// already-passed region).
	VirtualFirings int
}

// Replay checks whether the (reduced) history is reproducible on the
// target view and reconstructs the resulting state. info must be the block
// analysis of the target view.
//
// Newly inserted automatic nodes (no event in the history, auto-executable
// per model.Node.CanAutoExecute) are fired virtually whenever a recorded
// event is blocked on them — the "relaxed" part of the trace equivalence.
// Newly inserted manual activities are never fired virtually: if a
// recorded event depends on one, the instance is not compliant.
func Replay(view model.SchemaView, info *graph.Info, events []*history.Event) (*ReplayResult, error) {
	m := state.NewMarking()
	m.Init(view)
	store := data.NewStore()

	inHistory := make(map[string]bool, len(events))
	for _, e := range events {
		inHistory[e.Node] = true
	}

	res := &ReplayResult{Marking: m, Store: store}
	// One incremental evaluator is shared across all replayed events; the
	// virtual-firing candidates are maintained from its activation output
	// instead of rescanning the whole schema per blocked event.
	r := &replayer{
		view:      view,
		topo:      view.Topology(),
		ev:        state.NewEvaluator(view, m),
		m:         m,
		store:     store,
		inHistory: inHistory,
		res:       res,
	}
	r.observe(r.ev.Evaluate(0))

	for _, e := range events {
		n, ok := view.Node(e.Node)
		if !ok {
			return nil, &Error{Event: e, Reason: "node no longer exists in the target schema"}
		}
		switch e.Kind {
		case history.Started:
			for m.Node(e.Node) != state.Activated {
				if !r.fireVirtual(e.Seq) {
					return nil, &Error{Event: e, Reason: fmt.Sprintf("node is %s and cannot become activated", m.Node(e.Node))}
				}
				r.observe(r.ev.Evaluate(e.Seq))
			}
			// Mandatory inputs must have been available.
			for _, de := range view.DataEdgesOf(e.Node) {
				if de.Access == model.Read && de.Mandatory && !store.Has(de.Element) {
					return nil, &Error{Event: e, Reason: fmt.Sprintf("mandatory input element %q had no value", de.Element)}
				}
			}
			if err := m.Start(e.Node); err != nil {
				return nil, &Error{Event: e, Reason: err.Error()}
			}
		case history.Completed:
			if m.Node(e.Node) != state.Running {
				return nil, &Error{Event: e, Reason: fmt.Sprintf("node is %s, not running", m.Node(e.Node))}
			}
			// The recorded routing decision must still be possible.
			if n.Type == model.NodeXORSplit {
				found := false
				for _, edge := range model.OutControlEdges(view, e.Node) {
					if edge.Code == e.Decision {
						found = true
						break
					}
				}
				if !found {
					return nil, &Error{Event: e, Reason: fmt.Sprintf("selected branch (code %d) no longer exists", e.Decision)}
				}
			}
			// Outputs must exactly cover the write edges of the target
			// schema.
			for _, de := range view.DataEdgesOf(e.Node) {
				if de.Access != model.Write {
					continue
				}
				if _, ok := e.Writes[de.Element]; !ok {
					return nil, &Error{Event: e, Reason: fmt.Sprintf("completion wrote no value for element %q required by the target schema", de.Element)}
				}
			}
			for elem, val := range e.Writes {
				if !writesElement(view, e.Node, elem) {
					return nil, &Error{Event: e, Reason: fmt.Sprintf("recorded write of element %q has no data edge in the target schema", elem)}
				}
				store.Write(elem, val, e.Node, e.Seq)
			}
			if n.Type == model.NodeLoopEnd && e.Again {
				blk, ok := info.ByJoin(e.Node)
				if !ok {
					return nil, &Error{Event: e, Reason: "loop end has no loop block in the target schema"}
				}
				state.ResetLoop(view, m, blk.Region())
			} else {
				if err := m.Complete(view, e.Node, e.Decision); err != nil {
					return nil, &Error{Event: e, Reason: err.Error()}
				}
			}
		}
		r.observe(r.ev.Evaluate(e.Seq))
	}
	return res, nil
}

// replayer carries the per-replay state shared across events: the
// incremental evaluator and the candidate set for virtual firings.
type replayer struct {
	view      model.SchemaView
	topo      *model.Topology
	ev        *state.Evaluator
	m         *state.Marking
	store     *data.Store
	inHistory map[string]bool
	res       *ReplayResult

	// candidates holds the activated auto-executable nodes without a
	// history event, ordered by view position. It is fed by observe and
	// consumed by fireVirtual, replacing the historical full-schema scan
	// per blocked event.
	candidates []string
}

// observe folds the newly activated nodes of one evaluation pass into the
// virtual-firing candidate set.
func (r *replayer) observe(activated []string) {
	for _, id := range activated {
		if r.inHistory[id] {
			continue
		}
		nt := r.topo.Of(id)
		if nt == nil || !nt.Node.CanAutoExecute() {
			continue
		}
		r.insertCandidate(id, nt.Index)
	}
}

// insertCandidate inserts the node into the candidate list, keeping it
// sorted by view position so firings stay in deterministic schema order.
func (r *replayer) insertCandidate(id string, index int) {
	pos := len(r.candidates)
	for i, c := range r.candidates {
		if c == id {
			return
		}
		if r.topo.Of(c).Index > index {
			pos = i
			break
		}
	}
	r.candidates = append(r.candidates, "")
	copy(r.candidates[pos+1:], r.candidates[pos:])
	r.candidates[pos] = id
}

// fireVirtual starts and completes one newly inserted automatic node, in
// deterministic schema order. It returns false when no such node is
// enabled.
func (r *replayer) fireVirtual(seq int) bool {
	for i := 0; i < len(r.candidates); i++ {
		id := r.candidates[i]
		if r.m.Node(id) != state.Activated {
			// Stale candidate (e.g. demoted by a loop reset): drop it.
			r.candidates = append(r.candidates[:i], r.candidates[i+1:]...)
			i--
			continue
		}
		n := r.topo.Of(id).Node
		if err := r.m.Start(id); err != nil {
			continue
		}
		decision := -1
		if n.Type == model.NodeXORSplit {
			decision = virtualDecision(r.view, r.store, n)
		}
		// Virtual completions zero-fill their write edges, mirroring the
		// engine's automatic execution. Virtual loop ends never iterate
		// during replay (decision stays -1).
		for _, de := range r.view.DataEdgesOf(id) {
			if de.Access != model.Write {
				continue
			}
			if elem, ok := r.view.DataElement(de.Element); ok {
				r.store.Write(de.Element, elem.Type.ZeroValue(), id, seq)
			}
		}
		if err := r.m.Complete(r.view, id, decision); err != nil {
			continue
		}
		r.candidates = append(r.candidates[:i], r.candidates[i+1:]...)
		r.res.VirtualFirings++
		return true
	}
	return false
}

// virtualDecision resolves an XOR decision for a virtually fired split:
// the decision element's current value, clamped to the lowest existing
// code — identical to the engine's clamping rule.
func virtualDecision(view model.SchemaView, store *data.Store, n *model.Node) int {
	outs := model.OutControlEdges(view, n.ID)
	min := outs[0].Code
	for _, e := range outs {
		if e.Code < min {
			min = e.Code
		}
	}
	if n.DecisionElement == "" {
		return min
	}
	val, ok := store.Read(n.DecisionElement)
	if !ok {
		return min
	}
	want, ok := data.AsInt(val)
	if !ok {
		return min
	}
	for _, e := range outs {
		if e.Code == want {
			return want
		}
	}
	return min
}

func writesElement(v model.SchemaView, node, elem string) bool {
	for _, de := range v.DataEdgesOf(node) {
		if de.Access == model.Write && de.Element == elem {
			return true
		}
	}
	return false
}

// CheckFast evaluates the fast per-operation compliance conditions (paper
// Fig. 1) of a change against a running instance. It returns nil when the
// instance may adopt the change.
func CheckFast(ctx *change.Context, ops []change.Operation) error {
	for _, op := range ops {
		if err := op.FastCompliance(ctx); err != nil {
			return err
		}
	}
	return nil
}
