// Command container models the container transportation scenario of the
// paper's reference [3] (Bassil, Keller, Kropf, BPM'04): a fleet of
// transport processes with parallel customs clearance, evolved mid-flight
// to add a mandatory security scan — with durable journaling and crash
// recovery.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"adept2"
)

func buildTransport() *adept2.Schema {
	b := adept2.NewBuilder("container_transport")
	b.DataElement("manifest", adept2.TypeString)
	b.DataElement("route", adept2.TypeInt)

	book := b.Activity("book", "Book Transport", adept2.WithRole("dispatcher"))
	b.Write("book", "manifest", "manifest")
	b.Write("book", "route", "route")

	load := b.Activity("load", "Load Container", adept2.WithRole("terminal"))
	customs := b.Seq(
		b.Activity("declare", "Customs Declaration", adept2.WithRole("broker")),
		b.Activity("clear", "Customs Clearance", adept2.WithRole("broker")),
	)
	b.Read("declare", "manifest", "manifest", true)
	prep := b.Parallel(b.Seq(load), customs)

	// Route decision: sea (0) or rail (1), taken automatically from the
	// booked route.
	sea := b.Seq(
		b.Activity("ship", "Ship Leg", adept2.WithRole("carrier")),
		b.Activity("unload_port", "Unload at Port", adept2.WithRole("terminal")),
	)
	rail := b.Activity("rail", "Rail Leg", adept2.WithRole("carrier"))
	leg := b.Choice("route", sea, rail)

	deliver := b.Activity("deliver", "Deliver to Consignee", adept2.WithRole("carrier"))
	s, err := b.Build(b.Seq(book, prep, leg, deliver))
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	return s
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func main() {
	dir, err := os.MkdirTemp("", "adept2-container-*")
	must(err)
	defer os.RemoveAll(dir)
	journal := filepath.Join(dir, "wal.ndjson")

	sys, err := adept2.Open(journal)
	must(err)
	for _, u := range []*adept2.User{
		{ID: "dispatch", Roles: []string{"dispatcher"}},
		{ID: "quay", Roles: []string{"terminal"}},
		{ID: "broker1", Roles: []string{"broker"}},
		{ID: "capt", Roles: []string{"carrier"}},
		{ID: "sec", Roles: []string{"security"}},
	} {
		must(sys.AddUser(u))
	}
	must(sys.Deploy(buildTransport()))

	// A small fleet in different states.
	var ids []string
	for i := 0; i < 6; i++ {
		inst, err := sys.CreateInstance("container_transport")
		must(err)
		ids = append(ids, inst.ID())
		route := i % 2
		must(sys.Complete(inst.ID(), "book", "dispatch",
			map[string]any{"manifest": fmt.Sprintf("M-%03d", i), "route": route}))
		if i >= 3 {
			// The late fleet already cleared customs and loaded.
			must(sys.Complete(inst.ID(), "load", "quay", nil))
			must(sys.Complete(inst.ID(), "declare", "broker1", nil))
			must(sys.Complete(inst.ID(), "clear", "broker1", nil))
		}
	}

	// New regulation: every container needs a security scan after loading,
	// before the transport leg — a type change affecting the whole fleet.
	deltaT := []adept2.Operation{
		&adept2.SerialInsert{
			Node: &adept2.Node{ID: "scan", Name: "Security Scan", Type: adept2.NodeActivity, Role: "security", Template: "security_scan"},
			Pred: "load",
			Succ: "and-join_2", // the join closing the preparation block
		},
	}
	// Resolve the actual join ID from the deployed schema.
	schema, _ := sys.Engine().Schema("container_transport", 1)
	for _, n := range schema.Nodes() {
		if n.Type == adept2.NodeANDJoin {
			deltaT[0].(*adept2.SerialInsert).Succ = n.ID
		}
	}

	fmt.Println("=== fleet-wide evolution: add security scan ===")
	report, err := sys.Evolve("container_transport", deltaT, adept2.EvolveOptions{Workers: 4})
	must(err)
	fmt.Print(adept2.FormatReport(report))

	// Instances that already passed loading keep running on V1; the rest
	// migrated and now require the scan.
	migrated, stayed := 0, 0
	for _, id := range ids {
		inst, _ := sys.Instance(id)
		if inst.Version() == 2 {
			migrated++
		} else {
			stayed++
		}
	}
	fmt.Printf("\nfleet: %d on V2 (scan required), %d finish on V1\n", migrated, stayed)

	// Durability: reopen the journal and verify the fleet state survived.
	must(sys.Close())
	recovered, err := adept2.Open(journal)
	must(err)
	defer recovered.Close()
	inst, ok := recovered.Instance(ids[0])
	if !ok {
		log.Fatal("fleet lost after recovery")
	}
	fmt.Printf("\nrecovered from journal: %s on version %d, biased=%v\n",
		inst.ID(), inst.Version(), inst.Biased())
	fmt.Print(adept2.RenderInstance(inst))
}
