package sim

import (
	"fmt"
	"math/rand"

	"adept2/internal/change"
	"adept2/internal/engine"
	"adept2/internal/model"
)

// PopulationOpts tunes a synthetic online-order instance population — the
// "thousands of running instances" of the paper's Fig. 3 experiment.
type PopulationOpts struct {
	// N is the number of instances.
	N int
	// BiasedFrac is the fraction of instances receiving an ad-hoc change.
	BiasedFrac float64
	// ConflictingBiasFrac is the fraction of *biased* instances whose bias
	// structurally conflicts with the Fig. 1 type change (the I2 bias);
	// the rest receive a disjoint, migratable bias.
	ConflictingBiasFrac float64
	// LateFrac is the fraction of instances advanced past the change
	// region (state conflicts, the I3 state).
	LateFrac float64
}

// DefaultPopulationOpts matches the shape of the paper's demo: most
// instances migratable, a tail of state and structural conflicts.
func DefaultPopulationOpts(n int) PopulationOpts {
	return PopulationOpts{N: n, BiasedFrac: 0.2, ConflictingBiasFrac: 0.5, LateFrac: 0.25}
}

// BuildPopulation creates an online-order population on the engine. The
// schema must already be deployed. It returns the created instances.
func BuildPopulation(e *engine.Engine, rng *rand.Rand, opts PopulationOpts) ([]*engine.Instance, error) {
	insts := make([]*engine.Instance, 0, opts.N)
	for i := 0; i < opts.N; i++ {
		inst, err := e.CreateInstance("online_order", 0)
		if err != nil {
			return nil, err
		}
		insts = append(insts, inst)

		r := rng.Float64()
		switch {
		case r < opts.LateFrac:
			if err := AdvanceOnlineOrderToI3(e, inst); err != nil {
				return nil, fmt.Errorf("sim: advance %s to I3: %w", inst.ID(), err)
			}
		case r < opts.LateFrac+0.5:
			if err := AdvanceOnlineOrderToI1(e, inst); err != nil {
				return nil, fmt.Errorf("sim: advance %s to I1: %w", inst.ID(), err)
			}
		default:
			// Stays fresh (only get_order enabled).
		}

		if rng.Float64() < opts.BiasedFrac {
			var ops []change.Operation
			if rng.Float64() < opts.ConflictingBiasFrac {
				ops = conflictingBias(i)
			} else {
				ops = disjointBias(i)
			}
			if err := change.ApplyAdHoc(inst, ops...); err != nil {
				// Advanced instances may reject some biases; that's part
				// of a realistic population — skip silently.
				continue
			}
		}
	}
	return insts, nil
}

// conflictingBias returns the I2 bias (unique node IDs per instance): a
// brochure activity plus the sync edge that later collides with ΔT.
func conflictingBias(i int) []change.Operation {
	return []change.Operation{
		&change.SerialInsert{
			Node: &model.Node{
				ID:       fmt.Sprintf("send_brochure_%d", i),
				Name:     "Send Brochure",
				Type:     model.NodeActivity,
				Role:     "sales",
				Template: "send_brochure",
			},
			Pred: "collect_data",
			Succ: "confirm_order",
		},
		&change.InsertSyncEdge{From: "confirm_order", To: "compose_order"},
	}
}

// disjointBias returns a bias that never conflicts with ΔT: an extra
// quality check before delivery.
func disjointBias(i int) []change.Operation {
	return []change.Operation{
		&change.SerialInsert{
			Node: &model.Node{
				ID:       fmt.Sprintf("quality_check_%d", i),
				Name:     "Quality Check",
				Type:     model.NodeActivity,
				Role:     "warehouse",
				Template: "quality_check",
			},
			Pred: "get_order",
			Succ: "and-split_1",
		},
	}
}

// LoopProcess builds a process whose history grows with every iteration:
// a loop of three activities plus a trailing finalize activity. The Fig. 1
// compliance-cost experiment drives it to a target history length.
func LoopProcess() *model.Schema {
	b := model.NewBuilder("loopy")
	body := b.Seq(
		b.Activity("step1", "Step 1", model.WithRole("worker")),
		b.Activity("step2", "Step 2", model.WithRole("worker")),
		b.Activity("step3", "Step 3", model.WithRole("worker")),
	)
	loop := b.Loop(body, "", 0)
	fin := b.Activity("finalize", "Finalize", model.WithRole("worker"))
	s, err := b.Build(b.Seq(loop, fin))
	if err != nil {
		panic(fmt.Sprintf("sim: loop process: %v", err))
	}
	return s
}

// DriveLoopIterations runs the loop process instance through the given
// number of loop iterations, leaving the loop afterwards (finalize stays
// enabled). Each pass adds ten history events (gateway and activity
// starts/completions).
func DriveLoopIterations(e *engine.Engine, inst *engine.Instance, iterations int) error {
	v := inst.View()
	var loopEnd string
	for _, id := range v.NodeIDs() {
		n, _ := v.Node(id)
		if n.Type == model.NodeLoopEnd {
			loopEnd = id
		}
	}
	for it := 0; it <= iterations; it++ {
		for _, node := range []string{"step1", "step2", "step3"} {
			if err := e.CompleteActivity(inst.ID(), node, "ann", nil); err != nil {
				return err
			}
		}
		again := it < iterations
		if err := e.CompleteActivity(inst.ID(), loopEnd, "", nil, engine.WithLoopAgain(again)); err != nil {
			return err
		}
	}
	return nil
}

// LoopProcessTypeChange is the change measured by the Fig. 1 experiment: a
// review activity inserted before finalize.
func LoopProcessTypeChange() []change.Operation {
	var loopEnd string
	s := LoopProcess()
	for _, n := range s.Nodes() {
		if n.Type == model.NodeLoopEnd {
			loopEnd = n.ID
		}
	}
	return []change.Operation{
		&change.SerialInsert{
			Node: &model.Node{ID: "review", Name: "Review", Type: model.NodeActivity, Role: "worker", Template: "review"},
			Pred: loopEnd,
			Succ: "finalize",
		},
	}
}
