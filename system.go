package adept2

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"adept2/internal/change"
	"adept2/internal/durable"
	"adept2/internal/durable/sharded"
	"adept2/internal/engine"
	"adept2/internal/evolution"
	"adept2/internal/model"
	"adept2/internal/org"
	"adept2/internal/persist"
	"adept2/internal/rollback"
	"adept2/internal/storage"
)

// System bundles the engine with the migration manager and an optional
// durable command journal. All state-changing methods are journaled, so
// Open can rebuild the exact system state after a crash. With
// checkpointing enabled (WithCheckpointing), the journal is augmented by
// background state snapshots and recovery replays only the journal suffix
// past the newest valid snapshot; with group commit, concurrent commands
// share one buffered write + one fsync per batch.
type System struct {
	eng       *engine.Engine
	mgr       *evolution.Manager
	journal   *persist.Journal
	committer *durable.Committer

	// Sharded durability (set by Open on a sharded layout, exclusive
	// with journal/committer): the WAL routes control records to shard 0
	// and data records by instance hash, stores holds one snapshot store
	// per shard, and gman is the authoritative global manifest.
	wal    *sharded.WAL
	layout sharded.Layout
	stores []*durable.SnapshotStore
	gman   *sharded.Manifest
	ckptMu sync.Mutex // serializes global-manifest read-modify-write

	// snapMu is the snapshot barrier: every journaled command holds it
	// shared across "engine mutation + journal append", and a snapshot
	// capture holds it exclusively — so captures always observe command-
	// boundary-consistent state tied to an exact journal sequence number.
	// In sharded mode, control commands (user, deploy, evolve) hold it
	// exclusively too: the epoch stamped onto data records is only a
	// valid recovery order if no data command is in flight between a
	// control command's engine mutation and its epoch advance.
	snapMu sync.RWMutex

	ckpt     *checkpointer
	recovery *RecoveryInfo
}

// checkpointer tracks automatic background snapshots.
type checkpointer struct {
	store *durable.SnapshotStore
	every int // journal growth (records) that triggers a snapshot; <=0 disables
	keep  int // snapshots retained after a write

	mu       sync.Mutex
	idle     *sync.Cond // signaled when an in-flight snapshot finishes
	lastSeq  int        // journal seq covered by the newest snapshot
	tried    int        // journal seq at the last attempt (backoff base on failure)
	inflight bool
	err      error // last background snapshot failure (diagnosed, not fatal)
}

func newCheckpointer(store *durable.SnapshotStore, cfg *CheckpointConfig, lastSeq int) *checkpointer {
	ck := &checkpointer{store: store, every: cfg.Every, keep: cfg.Keep, lastSeq: lastSeq}
	ck.idle = sync.NewCond(&ck.mu)
	return ck
}

// wait blocks until no background snapshot is in flight and returns the
// most recent background snapshot error.
func (ck *checkpointer) wait() error {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	for ck.inflight {
		ck.idle.Wait()
	}
	return ck.err
}

// CheckpointConfig tunes the checkpointed durability pipeline (see
// WithCheckpointing). The zero value of every field selects a default.
type CheckpointConfig struct {
	// Dir is the snapshot directory. Default: <journal path>.snapshots.
	Dir string
	// Every triggers a background snapshot when the journal grew by this
	// many records since the last one. Default 1024; negative disables
	// automatic snapshots (Checkpoint can still be called explicitly).
	Every int
	// Keep bounds the snapshots retained after a successful write
	// (older ones are pruned). Default 3.
	Keep int
	// GroupCommit batches concurrent command appends into one buffered
	// write + one fsync (durable.Committer) instead of fsyncing per
	// record (per shard, in a sharded layout).
	GroupCommit bool
	// Shards selects the sharded durability layout: instances are hashed
	// across this many journals, each with its own committer and
	// snapshot series, under a global manifest (see
	// internal/durable/sharded). 0 or 1 keeps the single-journal layout.
	// The value only matters when a layout is first created; opening an
	// existing sharded layout auto-detects its count and refuses a
	// conflicting non-zero setting (reshard offline to change it).
	Shards int
	// FlushWindow and MaxBatch tune the group-commit flush window; zero
	// values take the committer defaults.
	FlushWindow time.Duration
	MaxBatch    int
}

func (c *CheckpointConfig) defaults(journalPath string) {
	if c.Dir == "" {
		c.Dir = journalPath + ".snapshots"
	}
	if c.Every == 0 {
		c.Every = 1024
	}
	if c.Keep <= 0 {
		c.Keep = 3
	}
}

// RecoveryInfo describes how Open rebuilt the system state.
type RecoveryInfo struct {
	// SnapshotSeq is the journal sequence number of the snapshot the
	// recovery started from (0 when recovering by full replay; shard 0's
	// snapshot in a sharded layout).
	SnapshotSeq int
	// SnapshotFile is the path of that snapshot ("" for full replay).
	SnapshotFile string
	// Replayed counts the journal records applied on top of the snapshot
	// (the whole journal for a full replay; summed across shards).
	Replayed int
	// FullReplay reports that no snapshot was used.
	FullReplay bool
	// Fallbacks diagnoses snapshots that were present but rejected
	// (checksum mismatch, version skew, torn file, failed restore). In a
	// sharded layout, whole generations fall back together.
	Fallbacks []string
	// Shards is the shard count of the recovered layout (1 for the
	// single-journal layout).
	Shards int
	// PerShard details each shard's recovery in a sharded layout (nil
	// otherwise).
	PerShard []ShardRecovery
}

// ShardRecovery is one shard's slice of a sharded recovery.
type ShardRecovery struct {
	// Shard is the shard index (0 is the control shard).
	Shard int
	// SnapshotSeq is the shard-journal sequence its snapshot covered.
	SnapshotSeq int
	// SnapshotFile is the snapshot file name ("" on full replay).
	SnapshotFile string
	// Replayed counts the shard's suffix records applied.
	Replayed int
}

// Option configures a System.
type Option func(*config)

type config struct {
	org      *org.Model
	strategy storage.Strategy
	journal  *persist.Journal
	ckpt     *CheckpointConfig
}

// WithOrg supplies a pre-populated organizational model.
func WithOrg(m *OrgModel) Option { return func(c *config) { c.org = m } }

// WithStorageStrategy selects the biased-instance representation.
func WithStorageStrategy(s StorageStrategy) Option {
	return func(c *config) { c.strategy = s }
}

// WithJournal attaches a command journal for durability.
func WithJournal(j *persist.Journal) Option { return func(c *config) { c.journal = j } }

// WithCheckpointing enables the checkpointed durability pipeline for Open:
// state snapshots written in the background at journal-growth thresholds,
// snapshot + journal-suffix recovery, and (optionally) group commit. It
// only takes effect together with a file journal opened through Open.
func WithCheckpointing(cfg CheckpointConfig) Option {
	return func(c *config) { c.ckpt = &cfg }
}

// New creates a System.
func New(opts ...Option) *System {
	var c config
	for _, o := range opts {
		o(&c)
	}
	return newSystem(&c)
}

func newSystem(c *config) *System {
	e := engine.New(c.org)
	e.SetStorageStrategy(c.strategy)
	return &System{eng: e, mgr: evolution.NewManager(e), journal: c.journal}
}

// Open creates a System backed by a file journal at path, recovering any
// existing state first, then appending new commands. Without
// checkpointing, recovery replays the entire journal. With
// WithCheckpointing, recovery restores the newest valid snapshot and
// replays only the journal suffix past it, falling back to older
// snapshots and finally to a full replay when snapshots are torn,
// corrupt, or version-skewed; Recovery reports what happened.
func Open(path string, opts ...Option) (*System, error) {
	var c config
	for _, o := range opts {
		o(&c)
	}

	// Sharded layouts are self-describing: a global manifest next to the
	// journal declares the shard count. Absent one, a configured shard
	// count > 1 creates a fresh sharded layout — but never silently on
	// top of existing single-journal data (reshard offline instead).
	man, err := sharded.LoadManifest(sharded.ManifestPath(path))
	if err != nil {
		return nil, err
	}
	want := 0
	if c.ckpt != nil {
		want = c.ckpt.Shards
	}
	switch {
	case man != nil:
		if want > 0 && want != man.Shards {
			return nil, fmt.Errorf(
				"adept2: layout at %s has %d shards but %d were requested: reshard offline (adeptctl reshard)",
				path, man.Shards, want)
		}
		return openSharded(&c, path, man)
	case want > 1:
		if err := refuseExistingSingleJournal(&c, path); err != nil {
			return nil, err
		}
		man = sharded.NewManifest(want)
		if err := sharded.WriteManifest(path, man); err != nil {
			return nil, err
		}
		return openSharded(&c, path, man)
	}

	var store *durable.SnapshotStore
	if c.ckpt != nil {
		c.ckpt.defaults(path)
		store, err = durable.OpenStore(c.ckpt.Dir)
		if err != nil {
			return nil, err
		}
	}
	sys, info, tail, err := recoverSystem(&c, store, path)
	if err != nil {
		return nil, err
	}

	// The recovery pass already established the journal's boundaries, so
	// the journal resumes (repairing any torn tail) without a second full
	// read. A journal compacted past its last record continues the
	// snapshot's numbering.
	if info.SnapshotSeq > tail.LastSeq {
		tail.LastSeq = info.SnapshotSeq
	}
	groupCommit := c.ckpt != nil && c.ckpt.GroupCommit
	j, err := persist.ResumeJournal(path, tail, groupCommit)
	if err != nil {
		return nil, err
	}
	if groupCommit {
		sys.committer = durable.NewCommitter(j, durable.CommitterOptions{
			FlushWindow: c.ckpt.FlushWindow,
			MaxBatch:    c.ckpt.MaxBatch,
		})
	}
	sys.journal = j
	sys.recovery = info
	if c.ckpt != nil {
		sys.ckpt = newCheckpointer(store, c.ckpt, info.SnapshotSeq)
	}
	return sys, nil
}

// recoverSystem rebuilds the system state from the snapshot store (when
// present) and the journal. Each snapshot attempt starts from a fresh
// system so a half-restored failure cannot leak into the fallback, and
// only the journal suffix past the chosen snapshot is decoded — the
// prefix is integrity-scanned without materializing records. Returns the
// recovered system, what happened, and the journal's scanned tail info.
func recoverSystem(c *config, store *durable.SnapshotStore, path string) (*System, *RecoveryInfo, persist.TailInfo, error) {
	info := &RecoveryInfo{}
	none := persist.TailInfo{}

	if store != nil {
		entries, err := store.Entries()
		if err != nil {
			return nil, nil, none, err
		}
		for i := len(entries) - 1; i >= 0; i-- {
			entry := entries[i]
			st, err := store.Load(entry)
			if err != nil {
				info.Fallbacks = append(info.Fallbacks, err.Error())
				continue
			}
			recs, tail, err := persist.LoadJournalSuffix(path, st.Seq)
			if err != nil {
				return nil, nil, none, err
			}
			// A snapshot ahead of the journal tail means the journal lost
			// committed records: recovering would silently forge history.
			// (An empty journal is fine — compaction may have folded every
			// record into the snapshot.)
			if tail.LastSeq > 0 && st.Seq > tail.LastSeq {
				return nil, nil, none, fmt.Errorf(
					"adept2: snapshot %s covers seq %d but the journal ends at %d: journal truncated, refusing to recover",
					entry.File, st.Seq, tail.LastSeq)
			}
			// A compacted journal needs a snapshot reaching its first
			// record; older snapshots cannot bridge the gap.
			if tail.FirstSeq > 1 && st.Seq < tail.FirstSeq-1 {
				info.Fallbacks = append(info.Fallbacks, fmt.Sprintf(
					"durable: snapshot %s (seq %d) predates the compacted journal start %d", entry.File, st.Seq, tail.FirstSeq))
				continue
			}
			// Each attempt gets its own copy of any caller-supplied org
			// model: a half-restored failure must not leak users into the
			// model the next attempt (or the full-replay fallback) starts
			// from.
			attempt := *c
			if c.org != nil {
				attempt.org = c.org.Clone()
			}
			sys := newSystem(&attempt)
			if err := durable.Restore(sys.eng, st); err != nil {
				info.Fallbacks = append(info.Fallbacks, err.Error())
				continue
			}
			for _, rec := range recs {
				if err := sys.apply(rec.Op, rec.Args); err != nil {
					return nil, nil, none, fmt.Errorf("persist: replay record %d (%s): %w", rec.Seq, rec.Op, err)
				}
			}
			info.SnapshotSeq = st.Seq
			info.SnapshotFile = entry.File
			info.Replayed = len(recs)
			return sys, info, tail, nil
		}
	}

	// Full replay — impossible once the journal was compacted.
	recs, tail, err := persist.LoadJournalSuffix(path, 0)
	if err != nil {
		return nil, nil, none, err
	}
	if tail.FirstSeq > 1 {
		return nil, nil, none, fmt.Errorf(
			"adept2: journal starts at seq %d (compacted) and no usable snapshot reaches seq %d: %v",
			tail.FirstSeq, tail.FirstSeq-1, info.Fallbacks)
	}
	sys := newSystem(c)
	if err := persist.Replay(recs, sys.apply); err != nil {
		return nil, nil, none, err
	}
	info.FullReplay = true
	info.Replayed = len(recs)
	return sys, info, tail, nil
}

// Recovery reports how Open rebuilt the state (nil for systems created
// with New).
func (s *System) Recovery() *RecoveryInfo { return s.recovery }

// Close drains the group-commit pipeline (every shard's, in a sharded
// layout), waits for an in-flight background snapshot, and releases the
// journals.
func (s *System) Close() error {
	var firstErr error
	if s.committer != nil {
		if err := s.committer.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if s.ckpt != nil {
		if err := s.ckpt.wait(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if s.wal != nil {
		if err := s.wal.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if s.journal != nil {
		if err := s.journal.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Health reports asynchronous durability failures without waiting for
// the next command to surface them: a wedged group-commit committer
// (sticky fsync-gate error — any shard's, in a sharded layout) or the
// most recent background checkpoint failure. nil means the pipeline is
// healthy.
func (s *System) Health() error {
	if s.wal != nil {
		if err := s.wal.Health(); err != nil {
			return err
		}
	}
	if s.committer != nil {
		if err := s.committer.Err(); err != nil {
			return fmt.Errorf("adept2: committer wedged: %w", err)
		}
	}
	if ck := s.ckpt; ck != nil {
		ck.mu.Lock()
		err := ck.err
		ck.mu.Unlock()
		if err != nil {
			return fmt.Errorf("adept2: background checkpoint failing: %w", err)
		}
	}
	return nil
}

// Engine exposes the underlying runtime (read paths, worklists).
func (s *System) Engine() *Engine { return s.eng }

// Org exposes the organizational model.
func (s *System) Org() *OrgModel { return s.eng.Org() }

// WorkItems returns the work items visible to a user.
func (s *System) WorkItems(user string) []*WorkItem { return s.eng.WorkItems(user) }

// Claim reserves a work item for a user.
func (s *System) Claim(itemID, user string) error { return s.eng.Claim(itemID, user) }

// Instance looks up an instance.
func (s *System) Instance(id string) (*Instance, bool) { return s.eng.Instance(id) }

// Instances returns all instances in creation order.
func (s *System) Instances() []*Instance { return s.eng.Instances() }

// --- journaled commands ---

type userArgs struct {
	User *org.User `json:"user"`
}

type deployArgs struct {
	Schema json.RawMessage `json:"schema"`
}

type createArgs struct {
	TypeName string `json:"type"`
	Version  int    `json:"version"`
	// ID is the engine-assigned instance ID (recorded since the sharded
	// layout so replay reproduces identical IDs under any shard
	// interleaving; empty in pre-PR4 records, where the total journal
	// order makes counter assignment deterministic).
	ID string `json:"id,omitempty"`
}

type startArgs struct {
	Instance string `json:"instance"`
	Node     string `json:"node"`
	User     string `json:"user,omitempty"`
}

type completeArgs struct {
	Instance string         `json:"instance"`
	Node     string         `json:"node"`
	User     string         `json:"user,omitempty"`
	Outputs  map[string]any `json:"outputs,omitempty"`
	Decision *int           `json:"decision,omitempty"`
	Again    *bool          `json:"again,omitempty"`
}

type adHocArgs struct {
	Instance string          `json:"instance"`
	Ops      json.RawMessage `json:"ops"`
}

type evolveArgs struct {
	TypeName string          `json:"type"`
	Ops      json.RawMessage `json:"ops"`
	Workers  int             `json:"workers,omitempty"`
	Mode     uint8           `json:"mode,omitempty"`
	Adapt    uint8           `json:"adapt,omitempty"`
}

// log journals a control command (schema deploys, users, evolutions): in
// a sharded layout these go to the shard-0 control log and advance the
// epoch; otherwise to the single journal.
func (s *System) log(op string, args any) error {
	var err error
	switch {
	case s.wal != nil:
		_, err = s.wal.AppendControl(op, args)
	case s.committer != nil:
		_, err = s.committer.Append(op, args)
	case s.journal != nil:
		err = s.journal.Append(op, args)
	default:
		return nil
	}
	if err == nil {
		s.maybeCheckpoint()
	}
	return err
}

// logData journals an instance-scoped command: in a sharded layout it
// routes to the instance's shard, stamped with the current epoch.
func (s *System) logData(instID, op string, args any) error {
	if s.wal == nil {
		return s.log(op, args)
	}
	if err := s.wal.AppendData(instID, op, args); err != nil {
		return err
	}
	s.maybeCheckpoint()
	return nil
}

// lockControl acquires the command barrier for a control command. In a
// multi-shard layout control commands hold the barrier exclusively: a
// data command observing the engine effect of a control command but
// stamping the pre-command epoch would replay on the wrong side of it
// after a crash. Single-journal (and single-shard) systems keep the
// cheap shared acquisition — the journal's total order needs no epoch.
func (s *System) lockControl() func() {
	if s.wal != nil && s.wal.Shards() > 1 {
		s.snapMu.Lock()
		return s.snapMu.Unlock
	}
	s.snapMu.RLock()
	return s.snapMu.RUnlock
}

// Checkpoint synchronously captures the engine state at the current
// journal position and writes a snapshot, returning its path and the
// journal sequence number it covers. The capture quiesces commands for
// the (in-memory, fast) state export; serialization and the file write
// happen outside the barrier.
func (s *System) Checkpoint() (string, int, error) {
	if s.ckpt == nil {
		return "", 0, fmt.Errorf("adept2: checkpointing is not enabled (use WithCheckpointing)")
	}
	if s.wal != nil {
		return s.checkpointSharded()
	}
	st, err := s.captureState()
	if err != nil {
		return "", 0, err
	}
	file, err := s.ckpt.store.WriteAndPrune(st, s.ckpt.keep)
	if err != nil {
		return file, st.Seq, err
	}
	s.ckpt.mu.Lock()
	if st.Seq > s.ckpt.lastSeq {
		s.ckpt.lastSeq = st.Seq
	}
	s.ckpt.mu.Unlock()
	return file, st.Seq, nil
}

// captureState stages the engine state under the exclusive snapshot
// barrier (cheap clones only — serialization happens after the barrier is
// released), tied to a fully durable journal sequence number: with group
// commit the pipeline is synced first, so the snapshot never covers
// records that could still be lost by a crash.
func (s *System) captureState() (*durable.SystemState, error) {
	s.snapMu.Lock()
	if s.committer != nil {
		if err := s.committer.Sync(); err != nil {
			s.snapMu.Unlock()
			return nil, err
		}
	}
	seq := 0
	if s.journal != nil {
		seq = s.journal.Seq()
	}
	staged := durable.Stage(s.eng, seq)
	s.snapMu.Unlock()
	return staged.Encode()
}

// maybeCheckpoint spawns a background snapshot when the journal grew past
// the configured threshold since the last one (at most one in flight).
// In a sharded layout the growth measure is the summed shard heads.
func (s *System) maybeCheckpoint() {
	ck := s.ckpt
	if ck == nil || ck.every <= 0 || (s.journal == nil && s.wal == nil) {
		return
	}
	var seq int
	if s.wal != nil {
		seq = s.wal.TotalSeq()
	} else {
		seq = s.journal.Seq()
	}
	ck.mu.Lock()
	// The trigger base is the newest snapshot OR the last (possibly
	// failed) attempt: a persistently failing snapshot store retries only
	// once per Every records instead of stalling every command behind the
	// capture barrier.
	base := ck.lastSeq
	if ck.tried > base {
		base = ck.tried
	}
	if ck.inflight || seq-base < ck.every {
		ck.mu.Unlock()
		return
	}
	ck.inflight = true
	ck.tried = seq
	ck.mu.Unlock()
	go func() {
		_, _, err := s.Checkpoint()
		ck.mu.Lock()
		ck.inflight = false
		ck.err = err
		ck.idle.Broadcast()
		ck.mu.Unlock()
	}()
}

// WaitCheckpoints blocks until no background snapshot is in flight and
// returns the most recent background snapshot error, if any.
func (s *System) WaitCheckpoints() error {
	if s.ckpt == nil {
		return nil
	}
	return s.ckpt.wait()
}

// JournalSeq returns the sequence number of the last journaled command (0
// without a journal). In a sharded layout it returns the summed shard
// head sequence numbers — a total growth measure, not a single position.
func (s *System) JournalSeq() int {
	if s.wal != nil {
		return s.wal.TotalSeq()
	}
	if s.journal == nil {
		return 0
	}
	return s.journal.Seq()
}

// AddUser registers a user in the organizational model (journaled, unlike
// direct Org() mutation).
func (s *System) AddUser(u *User) error {
	defer s.lockControl()()
	if err := s.eng.Org().AddUser(u); err != nil {
		return err
	}
	return s.log("user", userArgs{User: u})
}

// Deploy verifies and registers a schema version.
func (s *System) Deploy(schema *Schema) error {
	defer s.lockControl()()
	if err := s.eng.Deploy(schema); err != nil {
		return err
	}
	blob, err := json.Marshal(schema)
	if err != nil {
		return err
	}
	return s.log("deploy", deployArgs{Schema: blob})
}

// CreateInstance instantiates the latest version of a process type.
func (s *System) CreateInstance(typeName string) (*Instance, error) {
	return s.CreateInstanceVersion(typeName, 0)
}

// CreateInstanceVersion instantiates an explicit schema version (0 =
// latest).
func (s *System) CreateInstanceVersion(typeName string, version int) (*Instance, error) {
	s.snapMu.RLock()
	defer s.snapMu.RUnlock()
	inst, err := s.eng.CreateInstance(typeName, version)
	if err != nil {
		return nil, err
	}
	return inst, s.logData(inst.ID(), "create", createArgs{TypeName: typeName, Version: version, ID: inst.ID()})
}

// Start starts an activated activity on behalf of a user.
func (s *System) Start(instID, node, user string) error {
	s.snapMu.RLock()
	defer s.snapMu.RUnlock()
	if err := s.eng.StartActivity(instID, node, user); err != nil {
		return err
	}
	return s.logData(instID, "start", startArgs{Instance: instID, Node: node, User: user})
}

// Complete completes a node (starting it first when merely activated).
func (s *System) Complete(instID, node, user string, outputs map[string]any) error {
	return s.complete(completeArgs{Instance: instID, Node: node, User: user, Outputs: outputs})
}

// CompleteWithDecision completes an XOR split with an explicit routing
// decision.
func (s *System) CompleteWithDecision(instID, node, user string, outputs map[string]any, decision int) error {
	return s.complete(completeArgs{Instance: instID, Node: node, User: user, Outputs: outputs, Decision: &decision})
}

// CompleteLoop completes a loop end with an explicit iteration decision.
func (s *System) CompleteLoop(instID, node, user string, outputs map[string]any, again bool) error {
	return s.complete(completeArgs{Instance: instID, Node: node, User: user, Outputs: outputs, Again: &again})
}

func (s *System) complete(a completeArgs) error {
	s.snapMu.RLock()
	defer s.snapMu.RUnlock()
	var opts []engine.CompleteOption
	if a.Decision != nil {
		opts = append(opts, engine.WithDecision(*a.Decision))
	}
	if a.Again != nil {
		opts = append(opts, engine.WithLoopAgain(*a.Again))
	}
	if err := s.eng.CompleteActivity(a.Instance, a.Node, a.User, a.Outputs, opts...); err != nil {
		return err
	}
	return s.logData(a.Instance, "complete", a)
}

// AdHocChange applies an ad-hoc change to a single running instance (the
// paper's instance-level change dimension).
func (s *System) AdHocChange(instID string, ops ...Operation) error {
	s.snapMu.RLock()
	defer s.snapMu.RUnlock()
	inst, ok := s.eng.Instance(instID)
	if !ok {
		return fmt.Errorf("adept2: unknown instance %q", instID)
	}
	if err := change.ApplyAdHoc(inst, ops...); err != nil {
		return err
	}
	blob, err := change.MarshalOps(ops)
	if err != nil {
		return err
	}
	return s.logData(instID, "adhoc", adHocArgs{Instance: instID, Ops: blob})
}

type undoArgs struct {
	Instance string `json:"instance"`
	All      bool   `json:"all,omitempty"`
}

type suspendArgs struct {
	Instance string `json:"instance"`
	Resume   bool   `json:"resume,omitempty"`
}

// Suspend blocks user operations on an instance; ad-hoc changes and
// migration stay possible.
func (s *System) Suspend(instID string) error {
	s.snapMu.RLock()
	defer s.snapMu.RUnlock()
	if err := s.eng.Suspend(instID); err != nil {
		return err
	}
	return s.logData(instID, "suspend", suspendArgs{Instance: instID})
}

// Resume re-enables user operations on a suspended instance.
func (s *System) Resume(instID string) error {
	s.snapMu.RLock()
	defer s.snapMu.RUnlock()
	if err := s.eng.Resume(instID); err != nil {
		return err
	}
	return s.logData(instID, "suspend", suspendArgs{Instance: instID, Resume: true})
}

// UndoAdHocChange removes the most recent ad-hoc change of the instance,
// provided it has not progressed into the changed region.
func (s *System) UndoAdHocChange(instID string) error {
	return s.undo(instID, false)
}

// UndoAllAdHocChanges returns the instance to its plain schema version.
func (s *System) UndoAllAdHocChanges(instID string) error {
	return s.undo(instID, true)
}

func (s *System) undo(instID string, all bool) error {
	s.snapMu.RLock()
	defer s.snapMu.RUnlock()
	inst, ok := s.eng.Instance(instID)
	if !ok {
		return fmt.Errorf("adept2: unknown instance %q", instID)
	}
	var err error
	if all {
		err = rollback.UndoAll(inst)
	} else {
		err = rollback.UndoLast(inst)
	}
	if err != nil {
		return err
	}
	return s.logData(instID, "undo", undoArgs{Instance: instID, All: all})
}

// Evolve performs a schema evolution of the process type and migrates all
// compliant instances on the fly (the paper's type-level change
// dimension). The returned report classifies every instance.
func (s *System) Evolve(typeName string, ops []Operation, opts EvolveOptions) (*MigrationReport, error) {
	defer s.lockControl()()
	report, err := s.mgr.Evolve(typeName, ops, opts)
	if err != nil {
		return nil, err
	}
	blob, merr := change.MarshalOps(ops)
	if merr != nil {
		return report, merr
	}
	return report, s.log("evolve", evolveArgs{
		TypeName: typeName,
		Ops:      blob,
		Workers:  opts.Workers,
		Mode:     uint8(opts.Mode),
		Adapt:    uint8(opts.Adapt),
	})
}

// apply replays one journaled command (crash recovery).
func (s *System) apply(op string, args json.RawMessage) error {
	switch op {
	case "user":
		var a userArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return err
		}
		return s.eng.Org().AddUser(a.User)
	case "deploy":
		var a deployArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return err
		}
		var schema model.Schema
		if err := json.Unmarshal(a.Schema, &schema); err != nil {
			return err
		}
		return s.eng.Deploy(&schema)
	case "create":
		var a createArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return err
		}
		if a.ID != "" {
			_, err := s.eng.CreateInstanceID(a.ID, a.TypeName, a.Version)
			return err
		}
		_, err := s.eng.CreateInstance(a.TypeName, a.Version)
		return err
	case "start":
		var a startArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return err
		}
		return s.eng.StartActivity(a.Instance, a.Node, a.User)
	case "complete":
		var a completeArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return err
		}
		var opts []engine.CompleteOption
		if a.Decision != nil {
			opts = append(opts, engine.WithDecision(*a.Decision))
		}
		if a.Again != nil {
			opts = append(opts, engine.WithLoopAgain(*a.Again))
		}
		return s.eng.CompleteActivity(a.Instance, a.Node, a.User, a.Outputs, opts...)
	case "adhoc":
		var a adHocArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return err
		}
		ops, err := change.UnmarshalOps(a.Ops)
		if err != nil {
			return err
		}
		inst, ok := s.eng.Instance(a.Instance)
		if !ok {
			return fmt.Errorf("adept2: replay adhoc: unknown instance %q", a.Instance)
		}
		return change.ApplyAdHoc(inst, ops...)
	case "suspend":
		var a suspendArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return err
		}
		if a.Resume {
			return s.eng.Resume(a.Instance)
		}
		return s.eng.Suspend(a.Instance)
	case "undo":
		var a undoArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return err
		}
		inst, ok := s.eng.Instance(a.Instance)
		if !ok {
			return fmt.Errorf("adept2: replay undo: unknown instance %q", a.Instance)
		}
		if a.All {
			return rollback.UndoAll(inst)
		}
		return rollback.UndoLast(inst)
	case "evolve":
		var a evolveArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return err
		}
		ops, err := change.UnmarshalOps(a.Ops)
		if err != nil {
			return err
		}
		_, err = s.mgr.Evolve(a.TypeName, ops, evolution.Options{
			Workers: a.Workers,
			Mode:    evolution.CheckMode(a.Mode),
			Adapt:   evolution.AdaptMode(a.Adapt),
		})
		return err
	default:
		return fmt.Errorf("adept2: unknown journal op %q", op)
	}
}
