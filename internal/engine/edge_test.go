package engine

import (
	"strings"
	"testing"

	"adept2/internal/model"
	"adept2/internal/storage"
)

func TestXORDecisionElementErrors(t *testing.T) {
	// Auto split whose element holds a non-integer: the cascade surfaces
	// the error to the completing call.
	b := model.NewBuilder("badelem")
	b.DataElement("route", model.TypeString) // wrong type on purpose
	init := b.Activity("init", "Init", model.WithRole("clerk"))
	b.Write("init", "route", "r")
	ch := b.Choice("route",
		b.Activity("x", "X", model.WithRole("clerk")),
		b.Activity("y", "Y", model.WithRole("clerk")),
	)
	s, err := b.Build(b.Seq(init, ch))
	if err != nil {
		t.Fatal(err)
	}
	// The verifier warns about the element type but does not reject, so
	// the runtime guard matters.
	e := New(demoOrg(t))
	if err := e.Deploy(s); err != nil {
		t.Fatal(err)
	}
	inst, err := e.CreateInstance("badelem", 0)
	if err != nil {
		t.Fatal(err)
	}
	err = e.CompleteActivity(inst.ID(), "init", "ann", map[string]any{"r": "north"})
	if err == nil || !strings.Contains(err.Error(), "not an integer") {
		t.Fatalf("expected integer-decision error, got %v", err)
	}
}

func TestWorklistReleaseRoundTrip(t *testing.T) {
	e := newEngine(t)
	if _, err := e.CreateInstance("online_order", 0); err != nil {
		t.Fatal(err)
	}
	items := e.WorkItems("ann")
	if len(items) != 1 {
		t.Fatal("setup")
	}
	if err := e.Claim(items[0].ID, "ann"); err != nil {
		t.Fatal(err)
	}
	if err := e.Release(items[0].ID, "ann"); err != nil {
		t.Fatal(err)
	}
	if err := e.Claim(items[0].ID, "ann"); err != nil {
		t.Fatalf("re-claim after release: %v", err)
	}
}

func TestEngineAccessors(t *testing.T) {
	e := newEngine(t)
	if e.StorageStrategy() != storage.Hybrid {
		t.Fatal("default strategy")
	}
	e.SetStorageStrategy(storage.OnTheFly)
	if e.StorageStrategy() != storage.OnTheFly {
		t.Fatal("strategy setter")
	}
	if _, ok := e.Schema("online_order", 1); !ok {
		t.Fatal("schema lookup")
	}
	if _, ok := e.Schema("online_order", 9); ok {
		t.Fatal("missing version lookup")
	}
	inst, err := e.CreateInstance("online_order", 0)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Strategy() != storage.OnTheFly {
		t.Fatal("instance strategy")
	}
	snap := inst.StatsSnapshot()
	if snap == nil {
		t.Fatal("stats snapshot")
	}
	ds := inst.DataSnapshot()
	if ds == nil {
		t.Fatal("data snapshot")
	}
}

func TestCompleteUnknownNodeAndInstance(t *testing.T) {
	e := newEngine(t)
	inst, err := e.CreateInstance("online_order", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.CompleteActivity(inst.ID(), "ghost", "ann", nil); err == nil {
		t.Fatal("unknown node must fail")
	}
	if err := e.CompleteActivity("ghost", "get_order", "ann", nil); err == nil {
		t.Fatal("unknown instance must fail")
	}
	// Completing a node that is merely not activated fails cleanly.
	if err := e.CompleteActivity(inst.ID(), "deliver_goods", "bob", nil); err == nil {
		t.Fatal("not-activated completion must fail")
	}
}

func TestOptionalReadZeroFill(t *testing.T) {
	b := model.NewBuilder("opt")
	b.DataElement("note", model.TypeString)
	a := b.Activity("a", "A", model.WithRole("clerk"))
	b.Read("a", "note", "n", false) // optional, never written
	s, err := b.Build(a)
	if err != nil {
		t.Fatal(err)
	}
	e := New(demoOrg(t))
	if err := e.Deploy(s); err != nil {
		t.Fatal(err)
	}
	inst, err := e.CreateInstance("opt", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.CompleteActivity(inst.ID(), "a", "ann", nil); err != nil {
		t.Fatal(err)
	}
	for _, ev := range inst.HistoryEvents() {
		if ev.Node == "a" && ev.Reads != nil {
			if ev.Reads["n"] != "" {
				t.Fatalf("optional read should zero-fill, got %v", ev.Reads["n"])
			}
		}
	}
}
