package obs

// Set is one system's metric registry: every counter, gauge, histogram,
// and the trace ring, pre-allocated at construction so recording never
// allocates. The facade holds a *Set per System; Disabled (a nil *Set)
// turns the whole plane off — the hot paths guard on the nil pointer and
// skip both the recording and the clock reads, so the off path costs one
// predictable branch.
type Set struct {
	// Ops and Codes fix the label spaces: per-op arrays index by the
	// command's registry position, the outcome matrix by (op, code) with
	// Codes[0] = "ok".
	Ops   []string
	Codes []string

	outcomes      []Counter    // (op, code) flat: op*len(Codes)+code
	batched       []Counter    // per op: subset of OK applied inside SubmitBatch runs
	SubmitLatency []*Histogram // per op, nanos; singular submits, success only
	BatchSize     *Histogram   // data commands per SubmitBatch run
	BatchNanos    *Histogram   // append + durability wait per SubmitBatch run
	shardAppends  []Counter    // per shard: live-path journal records staged

	Committer  CommitterMetrics
	Checkpoint CheckpointMetrics
	Recovery   RecoveryMetrics
	Exception  ExceptionMetrics
	RPC        RPCMetrics

	Ring *TraceRing
}

// Disabled is the switched-off metrics plane: the nil *Set. Every
// recording method of the obs types is nil-safe, and the facade's hot
// paths skip their clock reads when the set is nil, so the disabled
// path is allocation-free and costs one branch.
var Disabled *Set

// Options tunes a Set (zero values take defaults).
type Options struct {
	// RingSlots is the trace-ring capacity (default 256).
	RingSlots int
	// SampleEvery traces one of every N submissions (default 64; 1
	// traces everything).
	SampleEvery int
}

// New builds a Set for the given op names, outcome codes (codes[0] must
// be "ok"), and shard count.
func New(ops, codes []string, shards int, o Options) *Set {
	if o.RingSlots == 0 {
		o.RingSlots = 256
	}
	if o.SampleEvery == 0 {
		o.SampleEvery = 64
	}
	if shards < 1 {
		shards = 1
	}
	s := &Set{
		Ops:          ops,
		Codes:        codes,
		outcomes:     make([]Counter, len(ops)*len(codes)),
		batched:      make([]Counter, len(ops)),
		shardAppends: make([]Counter, shards),
		BatchSize:    NewHistogram(14, 0),  // 1 .. 8k commands
		BatchNanos:   NewHistogram(28, 10), // ~1µs .. ~2¼min
		Ring:         NewTraceRing(o.RingSlots, o.SampleEvery),
	}
	s.SubmitLatency = make([]*Histogram, len(ops))
	for i := range s.SubmitLatency {
		s.SubmitLatency[i] = NewHistogram(28, 10)
	}
	s.Committer = CommitterMetrics{
		FsyncNanos:   NewHistogram(28, 10),
		BatchRecords: NewHistogram(18, 0), // 1 .. 128k records
	}
	s.Checkpoint.Nanos = NewHistogram(28, 10)
	s.Exception.SweepNanos = NewHistogram(28, 10)
	s.RPC.requests = make([]Counter, len(RPCEndpoints))
	s.RPC.failures = make([]Counter, len(RPCEndpoints))
	s.RPC.Latency = make([]*Histogram, len(RPCEndpoints))
	for i := range s.RPC.Latency {
		s.RPC.Latency[i] = NewHistogram(28, 10)
	}
	return s
}

// SubmitOK records a successful singular submission: the ok outcome and
// its synchronous latency (apply + stage; the durability wait is the
// receipt's, visible in the trace ring's applied→durable gap).
func (s *Set) SubmitOK(op int, nanos int64) {
	if s == nil {
		return
	}
	s.outcomes[op*len(s.Codes)].Inc()
	s.SubmitLatency[op].Observe(nanos)
}

// SubmitBatched records one command applied inside a SubmitBatch run
// (ok outcome; no per-command latency — the run's append cost is
// BatchNanos).
func (s *Set) SubmitBatched(op int) {
	if s == nil {
		return
	}
	s.outcomes[op*len(s.Codes)].Inc()
	s.batched[op].Inc()
}

// SubmitErr records a failed submission under its taxonomy code index
// (see Codes; unknown codes should map to the "internal" slot by the
// caller).
func (s *Set) SubmitErr(op, code int) {
	if s == nil || code <= 0 || code >= len(s.Codes) {
		return
	}
	s.outcomes[op*len(s.Codes)+code].Inc()
}

// ShardAppend counts n live-path journal records staged on a shard.
func (s *Set) ShardAppend(shard int, n int64) {
	if s == nil || shard < 0 || shard >= len(s.shardAppends) {
		return
	}
	s.shardAppends[shard].Add(n)
}

// OpOK returns the ok count of one op (tests and invariants).
func (s *Set) OpOK(op int) int64 {
	if s == nil {
		return 0
	}
	return s.outcomes[op*len(s.Codes)].Load()
}

// ShardAppends returns the staged-record count of one shard.
func (s *Set) ShardAppends(shard int) int64 {
	if s == nil || shard < 0 || shard >= len(s.shardAppends) {
		return 0
	}
	return s.shardAppends[shard].Load()
}

// CommitterMetrics is the group-commit pipeline's family, shared by
// every shard committer of a system (per-shard split lives in the shard
// gauges — the flush path itself aggregates). All methods are nil-safe:
// a committer without metrics passes nil and pays one branch.
type CommitterMetrics struct {
	FsyncNanos   *Histogram // per flush attempt (including retries)
	BatchRecords *Histogram // records covered per successful flush
	FlushRetries Counter    // attempts beyond each batch's first
	Wedges       Counter    // committers entering the wedged state
	Heals        Counter    // successful Heal calls on wedged committers
}

// ObserveFsync records one flush attempt's duration.
func (m *CommitterMetrics) ObserveFsync(nanos int64) {
	if m != nil {
		m.FsyncNanos.Observe(nanos)
	}
}

// ObserveBatch records a successful flush covering n records.
func (m *CommitterMetrics) ObserveBatch(n int64) {
	if m != nil && n > 0 {
		m.BatchRecords.Observe(n)
	}
}

// RetryInc counts one flush retry.
func (m *CommitterMetrics) RetryInc() {
	if m != nil {
		m.FlushRetries.Inc()
	}
}

// WedgeInc counts one committer wedging.
func (m *CommitterMetrics) WedgeInc() {
	if m != nil {
		m.Wedges.Inc()
	}
}

// HealInc counts one successful heal.
func (m *CommitterMetrics) HealInc() {
	if m != nil {
		m.Heals.Inc()
	}
}

// CheckpointMetrics covers snapshot writes (both layouts).
type CheckpointMetrics struct {
	Count    Counter
	Failures Counter
	Nanos    *Histogram
}

// RecoveryMetrics is recorded once per Open, after recovery completes —
// recovery itself never touches live-path metrics.
type RecoveryMetrics struct {
	Count       Counter
	Nanos       Counter
	Replayed    Counter
	Fallbacks   Counter
	FullReplays Counter
}

// ExceptionMetrics covers the detect→compensate loop and the deadline
// sweep.
type ExceptionMetrics struct {
	// Actions counts policy decisions by CompensationAction ordinal
	// (none, retry, skip, suspend — see ActionNames).
	Actions [4]Counter
	// Escalations counts deadline expiries fired (each escalates the
	// work item); Compensated counts compensating commands submitted by
	// sweeps.
	Escalations Counter
	Compensated Counter
	Sweeps      Counter
	SweepErrors Counter
	SweepNanos  *Histogram
	// SweepLagNanos is the latest gap between a timer sweep's due time
	// and its completion (schedule drift + sweep duration).
	SweepLagNanos Gauge
}

// ActionNames labels ExceptionMetrics.Actions, aligned with the
// facade's CompensationAction ordinals.
var ActionNames = [4]string{"none", "retry", "skip", "suspend"}

// RPC endpoint indexes into RPCEndpoints — the networked command plane's
// fixed label space (one slot per wire endpoint family).
const (
	EpCommands = iota // POST /v1/commands (sync + async submit)
	EpBatch           // POST /v1/batch
	EpInstances       // GET /v1/instances, /v1/instances/{id}
	EpWorkItems       // GET /v1/workitems
	EpExceptions      // GET /v1/exceptions
	EpHealth          // GET /v1/healthz
	EpWatermarks      // GET /v1/watermarks (snapshot + NDJSON stream)
	EpControlLog      // GET /v1/control-log (suffix read + NDJSON tail)
	NumEndpoints
)

// RPCEndpoints labels the RPC metric arrays, aligned with the Ep*
// indexes.
var RPCEndpoints = [NumEndpoints]string{
	"commands", "batch", "instances", "workitems",
	"exceptions", "health", "watermarks", "controllog",
}

// RPCMetrics is the networked command plane's family: per-endpoint
// request counts and latency, the open-stream gauge, the receipt/
// watermark stream depth, and wire decode failures. Recording goes
// through the nil-safe *Set methods below, so a System without metrics
// (or a Server handed obs.Disabled) pays one branch.
type RPCMetrics struct {
	requests []Counter    // per endpoint: requests answered (any status)
	failures []Counter    // per endpoint: non-2xx answers
	Latency  []*Histogram // per endpoint, nanos, full handler duration

	// OpenStreams counts currently-connected NDJSON subscribers
	// (watermark + control-log tails); StreamEvents counts lines pushed
	// to them (receipt-resolution fan-out depth over time).
	OpenStreams  Gauge
	StreamEvents Counter
	// DecodeErrors counts wire envelopes rejected before dispatch
	// (unknown op, malformed args/JSON).
	DecodeErrors Counter
}

// RPCRequest records one answered RPC request: the endpoint slot, the
// handler duration, and whether the answer was a success (2xx).
func (s *Set) RPCRequest(ep int, nanos int64, ok bool) {
	if s == nil || ep < 0 || ep >= len(s.RPC.requests) {
		return
	}
	s.RPC.requests[ep].Inc()
	if !ok {
		s.RPC.failures[ep].Inc()
	}
	s.RPC.Latency[ep].Observe(nanos)
}

// RPCStreamOpen/RPCStreamClose move the open-stream gauge.
func (s *Set) RPCStreamOpen() {
	if s != nil {
		s.RPC.OpenStreams.Add(1)
	}
}

func (s *Set) RPCStreamClose() {
	if s != nil {
		s.RPC.OpenStreams.Add(-1)
	}
}

// RPCStreamEvents counts n lines pushed to stream subscribers.
func (s *Set) RPCStreamEvents(n int64) {
	if s != nil && n > 0 {
		s.RPC.StreamEvents.Add(n)
	}
}

// RPCDecodeError counts one rejected wire envelope.
func (s *Set) RPCDecodeError() {
	if s != nil {
		s.RPC.DecodeErrors.Inc()
	}
}

// RPCRequests returns one endpoint's request count (tests).
func (s *Set) RPCRequests(ep int) int64 {
	if s == nil || ep < 0 || ep >= len(s.RPC.requests) {
		return 0
	}
	return s.RPC.requests[ep].Load()
}
