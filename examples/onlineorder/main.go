// Command onlineorder reproduces the exact demo walkthrough of the ADEPT2
// paper (Fig. 1 and Fig. 3): an online-order process evolves from version
// V1 to V2 while three instances are in flight — I1 migrates with
// automatic state adaptation, the ad-hoc modified I2 is caught by a
// structural conflict (a would-be deadlock cycle), and I3 is caught by a
// state conflict.
package main

import (
	"fmt"
	"log"

	"adept2"
)

// buildOnlineOrder models version 1 of the paper's online-order process.
func buildOnlineOrder() *adept2.Schema {
	b := adept2.NewBuilder("online_order")
	b.DataElement("order", adept2.TypeString)
	get := b.Activity("get_order", "Get Order", adept2.WithRole("clerk"))
	branchA := b.Seq(
		b.Activity("collect_data", "Collect Data", adept2.WithRole("clerk")),
		b.Activity("confirm_order", "Confirm Order", adept2.WithRole("sales")),
	)
	branchB := b.Seq(
		b.Activity("compose_order", "Compose Order", adept2.WithRole("warehouse")),
		b.Activity("pack_goods", "Pack Goods", adept2.WithRole("warehouse")),
	)
	deliver := b.Activity("deliver_goods", "Deliver Goods", adept2.WithRole("courier"))
	b.Write("get_order", "order", "out")
	b.Read("confirm_order", "order", "in", true)
	b.Read("compose_order", "order", "in", true)
	s, err := b.Build(b.Seq(get, b.Parallel(branchA, branchB), deliver))
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	return s
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func main() {
	sys := adept2.New()
	for _, u := range []*adept2.User{
		{ID: "ann", Roles: []string{"clerk", "sales"}},
		{ID: "bob", Roles: []string{"warehouse", "courier"}},
	} {
		must(sys.AddUser(u))
	}
	must(sys.Deploy(buildOnlineOrder()))

	// I1: both branches progressed, confirm_order and pack_goods not yet
	// started (the compliant instance of Fig. 1).
	i1, err := sys.CreateInstance("online_order")
	must(err)
	must(sys.Complete(i1.ID(), "get_order", "ann", map[string]any{"out": "order-1001"}))
	must(sys.Complete(i1.ID(), "collect_data", "ann", nil))
	must(sys.Complete(i1.ID(), "compose_order", "bob", nil))

	// I2: individually modified — send_brochure inserted, and composition
	// must wait for confirmation (sync edge). This bias later collides
	// with the type change.
	i2, err := sys.CreateInstance("online_order")
	must(err)
	must(sys.Complete(i2.ID(), "get_order", "ann", map[string]any{"out": "order-1002"}))
	must(sys.AdHocChange(i2.ID(),
		&adept2.SerialInsert{
			Node: &adept2.Node{ID: "send_brochure", Name: "Send Brochure", Type: adept2.NodeActivity, Role: "sales", Template: "send_brochure"},
			Pred: "collect_data",
			Succ: "confirm_order",
		},
		&adept2.InsertSyncEdge{From: "confirm_order", To: "compose_order"},
	))

	// I3: the warehouse already packed the goods (the state-conflict
	// instance of Fig. 1).
	i3, err := sys.CreateInstance("online_order")
	must(err)
	must(sys.Complete(i3.ID(), "get_order", "ann", map[string]any{"out": "order-1003"}))
	must(sys.Complete(i3.ID(), "collect_data", "ann", nil))
	must(sys.Complete(i3.ID(), "compose_order", "bob", nil))
	must(sys.Complete(i3.ID(), "pack_goods", "bob", nil))

	// The type change ΔT of Fig. 1: insert send_questions between
	// compose_order and pack_goods, synchronized before confirm_order.
	deltaT := []adept2.Operation{
		&adept2.SerialInsert{
			Node: &adept2.Node{ID: "send_questions", Name: "Send Questions", Type: adept2.NodeActivity, Role: "sales", Template: "send_questions"},
			Pred: "compose_order",
			Succ: "pack_goods",
		},
		&adept2.InsertSyncEdge{From: "send_questions", To: "confirm_order"},
	}
	fmt.Println("=== evolving online_order V1 -> V2 ===")
	report, err := sys.Evolve("online_order", deltaT, adept2.EvolveOptions{})
	must(err)
	fmt.Print(adept2.FormatReport(report))

	fmt.Println("\n=== I1 after migration (state adapted, Fig. 1 bottom) ===")
	fmt.Print(adept2.RenderInstance(i1))
	fmt.Println("\n=== I2 remains on V1 (ad-hoc modified) ===")
	fmt.Print(adept2.RenderInstance(i2))
	fmt.Println("\n=== I3 remains on V1 ===")
	fmt.Print(adept2.RenderInstance(i3))

	// All three instances complete on their respective versions.
	must(sys.Complete(i1.ID(), "send_questions", "ann", nil))
	must(sys.Complete(i1.ID(), "confirm_order", "ann", nil))
	must(sys.Complete(i1.ID(), "pack_goods", "bob", nil))
	must(sys.Complete(i1.ID(), "deliver_goods", "bob", nil))

	must(sys.Complete(i2.ID(), "collect_data", "ann", nil))
	must(sys.Complete(i2.ID(), "send_brochure", "ann", nil))
	must(sys.Complete(i2.ID(), "confirm_order", "ann", nil))
	must(sys.Complete(i2.ID(), "compose_order", "bob", nil))
	must(sys.Complete(i2.ID(), "pack_goods", "bob", nil))
	must(sys.Complete(i2.ID(), "deliver_goods", "bob", nil))

	must(sys.Complete(i3.ID(), "confirm_order", "ann", nil))
	must(sys.Complete(i3.ID(), "deliver_goods", "bob", nil))

	fmt.Printf("\nall done: I1=%v (v%d), I2=%v (v%d), I3=%v (v%d)\n",
		i1.Done(), i1.Version(), i2.Done(), i2.Version(), i3.Done(), i3.Version())
}
