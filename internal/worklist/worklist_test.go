package worklist

import "testing"

func TestOfferClaimStartWithdraw(t *testing.T) {
	m := NewManager()
	it, err := m.Offer("i1", "a", "clerk", []string{"bob", "ann"})
	if err != nil {
		t.Fatalf("offer: %v", err)
	}
	if it.State != Offered || len(it.Offered) != 2 || it.Offered[0] != "ann" {
		t.Fatalf("item = %+v", it)
	}
	if _, err := m.Offer("i1", "a", "clerk", nil); err == nil {
		t.Fatal("duplicate offer must fail")
	}
	if err := m.Claim(it.ID, "zoe"); err == nil {
		t.Fatal("claim by non-candidate must fail")
	}
	if err := m.Claim(it.ID, "ann"); err != nil {
		t.Fatalf("claim: %v", err)
	}
	if err := m.Claim(it.ID, "bob"); err == nil {
		t.Fatal("double claim must fail")
	}
	// Bob no longer sees the claimed item; Ann does.
	if got := m.ItemsFor("bob"); len(got) != 0 {
		t.Fatalf("bob sees %v", got)
	}
	if got := m.ItemsFor("ann"); len(got) != 1 {
		t.Fatalf("ann sees %v", got)
	}
	if err := m.Release(it.ID, "bob"); err == nil {
		t.Fatal("release by non-claimer must fail")
	}
	if err := m.Release(it.ID, "ann"); err != nil {
		t.Fatalf("release: %v", err)
	}
	if err := m.MarkStarted("i1", "a", "bob"); err != nil {
		t.Fatalf("start: %v", err)
	}
	got, ok := m.ItemFor("i1", "a")
	if !ok || got.State != InProgress || got.ClaimedBy != "bob" {
		t.Fatalf("ItemFor = %+v, %v", got, ok)
	}
	m.Withdraw("i1", "a")
	if m.Len() != 0 {
		t.Fatal("withdraw failed")
	}
	m.Withdraw("i1", "a") // no-op
	if _, ok := m.ItemFor("i1", "a"); ok {
		t.Fatal("item should be gone")
	}
}

func TestClaimConflictsAndErrors(t *testing.T) {
	m := NewManager()
	if err := m.Claim("nope", "ann"); err == nil {
		t.Fatal("claim unknown item")
	}
	if err := m.Release("nope", "ann"); err == nil {
		t.Fatal("release unknown item")
	}
	if err := m.MarkStarted("i", "n", "u"); err == nil {
		t.Fatal("start without item")
	}
	it, err := m.Offer("i1", "a", "clerk", []string{"ann"})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Claim(it.ID, "ann"); err != nil {
		t.Fatal(err)
	}
	if err := m.MarkStarted("i1", "a", "zoe"); err == nil {
		t.Fatal("start of claimed item by other user must fail")
	}
	if err := m.MarkStarted("i1", "a", "ann"); err != nil {
		t.Fatal(err)
	}
}

func TestItemsForInstance(t *testing.T) {
	m := NewManager()
	if _, err := m.Offer("i1", "a", "r", []string{"u"}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Offer("i1", "b", "r", []string{"u"}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Offer("i2", "a", "r", []string{"u"}); err != nil {
		t.Fatal(err)
	}
	if got := m.ItemsForInstance("i1"); len(got) != 2 {
		t.Fatalf("i1 items = %v", got)
	}
	if got := m.ItemsForInstance("i3"); len(got) != 0 {
		t.Fatalf("i3 items = %v", got)
	}
}

func TestBatchUpdateReconciles(t *testing.T) {
	m := NewManager()
	resolutions := 0
	users := func(role string) []string {
		resolutions++
		return []string{"ann", "bob"}
	}

	// Initial batch: two activated nodes of one role — one org resolution.
	m.BatchUpdate("i1", []Wanted{
		{Node: "a", Role: "clerk"},
		{Node: "b", Role: "clerk"},
	}, users)
	if m.Len() != 2 || resolutions != 1 {
		t.Fatalf("after initial batch: len=%d resolutions=%d", m.Len(), resolutions)
	}
	itA, ok := m.ItemFor("i1", "a")
	if !ok || itA.Role != "clerk" || itA.State != Offered {
		t.Fatalf("item a = %+v", itA)
	}

	// Re-running the same batch keeps the existing items untouched.
	m.BatchUpdate("i1", []Wanted{
		{Node: "a", Role: "clerk"},
		{Node: "b", Role: "clerk"},
	}, users)
	if again, _ := m.ItemFor("i1", "a"); again.ID != itA.ID {
		t.Fatal("unchanged batch replaced an existing item")
	}

	// b leaves the wanted set; c joins with a different role.
	m.BatchUpdate("i1", []Wanted{
		{Node: "a", Role: "clerk"},
		{Node: "c", Role: "sales"},
	}, users)
	if _, ok := m.ItemFor("i1", "b"); ok {
		t.Fatal("obsolete item not withdrawn")
	}
	if _, ok := m.ItemFor("i1", "c"); !ok {
		t.Fatal("new item not offered")
	}

	// A role change on an offered item withdraws and re-offers it.
	m.BatchUpdate("i1", []Wanted{
		{Node: "a", Role: "sales"},
		{Node: "c", Role: "sales"},
	}, users)
	reoffered, ok := m.ItemFor("i1", "a")
	if !ok || reoffered.Role != "sales" || reoffered.ID == itA.ID {
		t.Fatalf("role change not re-offered: %+v", reoffered)
	}

	// Running work is never disturbed, even across a role change, and no
	// item is created for running nodes without one.
	if err := m.MarkStarted("i1", "a", "ann"); err != nil {
		t.Fatal(err)
	}
	m.BatchUpdate("i1", []Wanted{
		{Node: "a", Role: "clerk", Running: true},
		{Node: "d", Role: "sales", Running: true},
	}, users)
	kept, ok := m.ItemFor("i1", "a")
	if !ok || kept.State != InProgress || kept.ID != reoffered.ID {
		t.Fatalf("running item disturbed: %+v", kept)
	}
	if _, ok := m.ItemFor("i1", "d"); ok {
		t.Fatal("item offered for running node without one")
	}
	if _, ok := m.ItemFor("i1", "c"); ok {
		t.Fatal("item c should have been withdrawn")
	}

	// Other instances are untouched throughout.
	if _, err := m.Offer("i2", "a", "clerk", []string{"zoe"}); err != nil {
		t.Fatal(err)
	}
	m.BatchUpdate("i1", nil, users)
	if _, ok := m.ItemFor("i2", "a"); !ok {
		t.Fatal("batch update leaked into other instance")
	}
	if _, ok := m.ItemFor("i1", "a"); ok {
		t.Fatal("empty batch must withdraw everything of the instance")
	}
}

func TestItemStateString(t *testing.T) {
	if Offered.String() != "offered" || Claimed.String() != "claimed" || InProgress.String() != "in-progress" {
		t.Fatal("state strings")
	}
	if ItemState(9).String() == "" {
		t.Fatal("out-of-range string")
	}
}
