package engine

import (
	"fmt"
	"sync"

	"adept2/internal/data"
	"adept2/internal/graph"
	"adept2/internal/history"
	"adept2/internal/model"
	"adept2/internal/state"
	"adept2/internal/storage"
)

// Instance is one running process instance. All exported methods are safe
// for concurrent use; the migration manager and the change framework
// obtain exclusive access through Mutate.
type Instance struct {
	mu  sync.Mutex
	eng *Engine

	id       string
	typeName string
	version  int
	base     *model.Schema

	strategy storage.Strategy
	overlay  *storage.Overlay // hybrid representation (nil while unbiased)
	fullcopy *model.Schema    // full-copy representation (nil while unbiased)
	biasOps  []BiasOp

	blocks    *graph.Info // block analysis of the cached view (nil for on-the-fly biased instances)
	marking   *state.Marking
	hist      *history.Log
	stats     *history.Stats
	store     *data.Store
	loopIter  map[string]int // loop end ID -> completed iterations
	done      bool
	suspended bool

	// Exception state, all keyed by node ID and all rebuilt identically
	// by command replay (every transition below rides a journaled
	// command): deadlines holds the absolute expiry (unix nanos) armed
	// when a deadline-bearing activity started; retryAt holds the time a
	// failed activity's re-offer becomes due (its work item is
	// suppressed until then); failures counts consecutive failed
	// attempts; escalated marks running nodes whose deadline fired and
	// whose item was re-offered to the escalation role; compPending
	// marks failed nodes awaiting a policy compensation (item suppressed
	// until a Retry command or the compensation lands). Entries are
	// reconciled against the marking on every worklist sync so they
	// never outlive the node state they describe.
	deadlines   map[string]int64
	retryAt     map[string]int64
	failures    map[string]int
	escalated   map[string]bool
	compPending map[string]bool

	migrations int
}

func newInstance(e *Engine, id string, base *model.Schema, strat storage.Strategy) *Instance {
	return &Instance{
		eng:      e,
		id:       id,
		typeName: base.TypeName(),
		version:  base.Version(),
		base:     base,
		strategy: strat,
		marking:  state.NewMarking(base),
		hist:     history.NewLog(),
		stats:    history.NewStatsFor(base.Topology()),
		store:    data.NewStore(),
		loopIter: make(map[string]int),
	}
}

// ID returns the instance identifier.
func (inst *Instance) ID() string { return inst.id }

// TypeName returns the process type of the instance.
func (inst *Instance) TypeName() string { return inst.typeName }

// Version returns the schema version the instance currently runs on.
func (inst *Instance) Version() int {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	return inst.version
}

// Done reports whether the instance reached its end node.
func (inst *Instance) Done() bool {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	return inst.done
}

// Suspended reports whether user operations on the instance are blocked.
func (inst *Instance) Suspended() bool {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	return inst.suspended
}

// Biased reports whether the instance deviates from its schema version.
func (inst *Instance) Biased() bool {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	return len(inst.biasOps) > 0
}

// BiasOps returns the instance-specific change operations applied so far.
func (inst *Instance) BiasOps() []BiasOp {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	return append([]BiasOp(nil), inst.biasOps...)
}

// Migrations returns how often the instance migrated to a newer schema
// version.
func (inst *Instance) Migrations() int {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	return inst.migrations
}

// Strategy returns the storage strategy of the instance.
func (inst *Instance) Strategy() storage.Strategy { return inst.strategy }

// View returns the instance's current schema view. For on-the-fly biased
// instances this materializes the instance-specific schema — the
// deliberate cost of that baseline representation.
func (inst *Instance) View() model.SchemaView {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	v, _, err := inst.viewLocked()
	if err != nil {
		panic(fmt.Sprintf("engine: instance %s: corrupt bias: %v", inst.id, err))
	}
	return v
}

// NodeState returns the state of one node.
func (inst *Instance) NodeState(node string) state.NodeState {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	return inst.marking.Node(node)
}

// MarkingSnapshot returns a copy of the instance marking.
func (inst *Instance) MarkingSnapshot() *state.Marking {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	return inst.marking.Clone()
}

// HistoryEvents returns a copy of the physical execution history.
func (inst *Instance) HistoryEvents() []*history.Event {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	events := inst.hist.Events()
	out := make([]*history.Event, len(events))
	for i, e := range events {
		out[i] = e.Clone()
	}
	return out
}

// MineView is the under-lock view of one instance handed to a
// MineHistory visitor: identity, state flags, the physical history, and
// its logical (loop/failure-purged) reduction. Both event slices alias
// live engine state — the visitor must fold what it needs and return
// without retaining any pointer past the call.
type MineView struct {
	ID       string
	TypeName string
	Version  int
	Biased   bool
	Done     bool

	// Events is the physical history (every Started/Completed/Failed/
	// Timeout marker); Reduced is the logical history per
	// history.ReduceInto — superseded loop iterations and failed
	// attempts purged, Timeout markers dropped.
	Events  []*history.Event
	Reduced []*history.Event
}

// MineHistory runs visit over the instance's history under the instance
// lock, folding into caller-owned memory: the reduction reuses buf
// (grown as needed) and the returned slice is buf's latest incarnation,
// to be passed back in on the next instance. One buffer thus serves a
// whole scan batch — the mining layer's bounded-memory invariant — and
// the events' intern memos stay single-goroutine (they mutate lazily
// during reduction, which is why the visitor must run inside the lock
// rather than on a returned copy).
func (inst *Instance) MineHistory(buf []*history.Event, visit func(MineView)) []*history.Event {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	events := inst.hist.Events()
	reduced := events
	if _, info, err := inst.viewLocked(); err == nil {
		reduced = history.ReduceInto(info, events, buf)
	} else {
		// A view that cannot materialize (broken bias) still gets mined:
		// the physical history stands in for the reduction.
		reduced = append(buf[:0], events...)
	}
	visit(MineView{
		ID:       inst.id,
		TypeName: inst.typeName,
		Version:  inst.version,
		Biased:   len(inst.biasOps) > 0,
		Done:     inst.done,
		Events:   events,
		Reduced:  reduced,
	})
	return reduced
}

// StatsSnapshot returns a copy of the per-node execution index.
func (inst *Instance) StatsSnapshot() *history.Stats {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	return inst.stats.Clone()
}

// DataSnapshot returns a copy of the instance data store.
func (inst *Instance) DataSnapshot() *data.Store {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	return inst.store.Clone()
}

// LoopIterations returns how often the given loop end iterated.
func (inst *Instance) LoopIterations(loopEnd string) int {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	return inst.loopIter[loopEnd]
}

// Deadline returns the armed absolute deadline (unix nanos) of a running
// node, and whether one is armed.
func (inst *Instance) Deadline(node string) (int64, bool) {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	dl, ok := inst.deadlines[node]
	return dl, ok
}

// Deadlines returns a copy of all armed deadlines (node -> unix nanos).
func (inst *Instance) Deadlines() map[string]int64 {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	if len(inst.deadlines) == 0 {
		return nil
	}
	out := make(map[string]int64, len(inst.deadlines))
	for k, v := range inst.deadlines {
		out[k] = v
	}
	return out
}

// FailureCount returns how many consecutive failed attempts the node has
// accumulated (reset on successful completion or loop purge).
func (inst *Instance) FailureCount(node string) int {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	return inst.failures[node]
}

// Escalated reports whether the running node's deadline fired and its
// work item was re-offered to the escalation role.
func (inst *Instance) Escalated(node string) bool {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	return inst.escalated[node]
}

// RetryDue returns the time (unix nanos) a failed node's re-offer
// becomes due, and whether a backoff is pending.
func (inst *Instance) RetryDue(node string) (int64, bool) {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	at, ok := inst.retryAt[node]
	return at, ok
}

// PendingCompensation reports whether the failed node awaits a policy
// compensation (its work item is suppressed meanwhile).
func (inst *Instance) PendingCompensation(node string) bool {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	return inst.compPending[node]
}

// StorageFootprint describes the memory attributable to one instance under
// its storage strategy; the Fig. 2 experiment aggregates it.
type StorageFootprint struct {
	// BiasBytes is the representation cost of the instance-specific
	// schema: the substitution block (hybrid), the full copy, or the
	// recorded operations (on-the-fly).
	BiasBytes int
	// StateBytes covers marking, history, stats, and data versions.
	StateBytes int
}

// Footprint returns the instance's storage footprint.
func (inst *Instance) Footprint() StorageFootprint {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	f := StorageFootprint{
		StateBytes: inst.marking.ApproxBytes() + inst.hist.ApproxBytes() + inst.store.ApproxBytes() + 24*inst.stats.Len(),
	}
	switch {
	case inst.overlay != nil:
		f.BiasBytes = inst.overlay.ApproxBytes()
	case inst.fullcopy != nil:
		f.BiasBytes = inst.fullcopy.ApproxBytes()
	case len(inst.biasOps) > 0:
		f.BiasBytes = 64 * len(inst.biasOps) // recorded operations only
	}
	return f
}

// viewLocked returns the current schema view and its block analysis.
func (inst *Instance) viewLocked() (model.SchemaView, *graph.Info, error) {
	switch {
	case len(inst.biasOps) == 0:
		info, err := inst.eng.blocksOf(inst.base)
		return inst.base, info, err
	case inst.strategy == storage.Hybrid:
		return inst.overlay, inst.blocks, nil
	case inst.strategy == storage.FullCopy:
		return inst.fullcopy, inst.blocks, nil
	default: // on-the-fly: materialize per access
		s := inst.base.Clone()
		s.SetSchemaID(inst.base.SchemaID() + "+bias")
		for _, op := range inst.biasOps {
			if err := op.ApplyTo(s); err != nil {
				return nil, nil, fmt.Errorf("engine: materialize bias of %s: %w", inst.id, err)
			}
		}
		info, err := graph.Analyze(s)
		if err != nil {
			return nil, nil, err
		}
		return s, info, nil
	}
}

// blocksOf caches block analyses of deployed (immutable) schemas so the
// thousands of unbiased instances of one type share a single analysis.
func (e *Engine) blocksOf(s *model.Schema) (*graph.Info, error) {
	e.mu.RLock()
	info, ok := e.blocks[s]
	e.mu.RUnlock()
	if ok {
		return info, nil
	}
	info, err := graph.Analyze(s)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.blocks[s] = info
	e.mu.Unlock()
	return info, nil
}

// bootstrapLocked initializes the marking of a fresh instance and runs the
// automatic cascade.
func (inst *Instance) bootstrapLocked() error {
	v, _, err := inst.viewLocked()
	if err != nil {
		return err
	}
	inst.marking.Init(v)
	return inst.cascadeLocked()
}

// Mutable is the controlled mutation surface handed out by Mutate. It is
// only valid within the Mutate callback.
type Mutable struct {
	inst *Instance
}

// Mutate runs fn with exclusive access to the instance internals and
// reconciles the worklist afterwards. The change framework and the
// migration manager are its only intended callers.
func (inst *Instance) Mutate(fn func(mx *Mutable) error) error {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	if err := fn(&Mutable{inst: inst}); err != nil {
		return err
	}
	inst.syncWorklistLocked()
	return nil
}

// View returns the current schema view.
func (mx *Mutable) View() (model.SchemaView, error) {
	v, _, err := mx.inst.viewLocked()
	return v, err
}

// Blocks returns the block analysis of the current view.
func (mx *Mutable) Blocks() (*graph.Info, error) {
	_, info, err := mx.inst.viewLocked()
	return info, err
}

// Marking exposes the live marking.
func (mx *Mutable) Marking() *state.Marking { return mx.inst.marking }

// Stats exposes the live execution index.
func (mx *Mutable) Stats() *history.Stats { return mx.inst.stats }

// History exposes the live history log.
func (mx *Mutable) History() *history.Log { return mx.inst.hist }

// Store exposes the live data store.
func (mx *Mutable) Store() *data.Store { return mx.inst.store }

// Done reports whether the instance finished.
func (mx *Mutable) Done() bool { return mx.inst.done }

// BiasOps returns the recorded instance-specific change operations.
func (mx *Mutable) BiasOps() []BiasOp {
	return append([]BiasOp(nil), mx.inst.biasOps...)
}

// Version returns the current schema version.
func (mx *Mutable) Version() int { return mx.inst.version }

// Base returns the deployed schema the instance references.
func (mx *Mutable) Base() *model.Schema { return mx.inst.base }

// TrialSchema materializes the current view into a standalone schema the
// caller may mutate freely to validate a change before committing it.
func (mx *Mutable) TrialSchema() (*model.Schema, error) {
	v, _, err := mx.inst.viewLocked()
	if err != nil {
		return nil, err
	}
	return storage.Materialize(v, v.SchemaID()+"+trial", v.TypeName(), v.Version())
}

// PersistentTarget returns the mutable view the committed bias must be
// applied to: the overlay (hybrid), the materialized copy (full-copy), or
// nil for on-the-fly instances (which re-apply recorded operations on
// access).
func (mx *Mutable) PersistentTarget() model.MutableView {
	inst := mx.inst
	switch inst.strategy {
	case storage.Hybrid:
		if inst.overlay == nil {
			inst.overlay = storage.NewOverlay(inst.base)
		}
		return inst.overlay
	case storage.FullCopy:
		if inst.fullcopy == nil {
			inst.fullcopy = inst.base.Clone()
			inst.fullcopy.SetSchemaID(inst.base.SchemaID() + "+bias")
		}
		return inst.fullcopy
	default:
		return nil
	}
}

// CommitBias records operations as part of the instance bias and refreshes
// the cached block analysis.
func (mx *Mutable) CommitBias(ops ...BiasOp) error {
	inst := mx.inst
	inst.biasOps = append(inst.biasOps, ops...)
	return mx.refreshBlocks()
}

func (mx *Mutable) refreshBlocks() error {
	inst := mx.inst
	if len(inst.biasOps) == 0 || inst.strategy == storage.OnTheFly {
		inst.blocks = nil
		return nil
	}
	var v model.SchemaView
	if inst.strategy == storage.Hybrid {
		v = inst.overlay
	} else {
		v = inst.fullcopy
	}
	info, err := graph.Analyze(v)
	if err != nil {
		return fmt.Errorf("engine: refresh blocks of %s: %w", inst.id, err)
	}
	inst.blocks = info
	return nil
}

// MigrateTo moves the instance to a new schema version: the base schema is
// swapped, the (possibly empty) rebased bias is re-applied to a fresh
// representation, and the version counter advances. State adaptation is
// the caller's next step (AdaptState).
func (mx *Mutable) MigrateTo(newBase *model.Schema, rebased []BiasOp) error {
	inst := mx.inst
	inst.base = newBase
	inst.version = newBase.Version()
	inst.overlay = nil
	inst.fullcopy = nil
	inst.biasOps = nil
	inst.blocks = nil
	if len(rebased) > 0 {
		target := (&Mutable{inst: inst}).PersistentTarget()
		if target != nil {
			for _, op := range rebased {
				if err := op.ApplyTo(target); err != nil {
					return fmt.Errorf("engine: migrate %s: re-apply bias: %w", inst.id, err)
				}
			}
		}
		inst.biasOps = rebased
		if err := mx.refreshBlocks(); err != nil {
			return err
		}
	}
	inst.migrations++
	return nil
}

// RebuildBias replaces the instance bias wholesale: the representation is
// reset against the unchanged base schema and the remaining operations are
// re-applied. The rollback facility uses it to undo ad-hoc changes.
func (mx *Mutable) RebuildBias(ops []BiasOp) error {
	inst := mx.inst
	inst.overlay = nil
	inst.fullcopy = nil
	inst.biasOps = nil
	inst.blocks = nil
	if len(ops) == 0 {
		return nil
	}
	target := mx.PersistentTarget()
	if target != nil {
		for _, op := range ops {
			if err := op.ApplyTo(target); err != nil {
				return fmt.Errorf("engine: rebuild bias of %s: %w", inst.id, err)
			}
		}
	}
	inst.biasOps = ops
	return mx.refreshBlocks()
}

// AdaptState recomputes the marking against the current view (the
// efficient state adaptation of the paper) and returns the newly activated
// nodes. It also advances the instance over any automatic nodes the
// adaptation enabled.
func (mx *Mutable) AdaptState() ([]string, error) {
	inst := mx.inst
	v, _, err := inst.viewLocked()
	if err != nil {
		return nil, err
	}
	activated := state.Adapt(v, inst.marking, inst.stats.Decisions(), inst.hist.NextSeq())
	if err := inst.cascadeLocked(); err != nil {
		return activated, err
	}
	return activated, nil
}

// Cascade runs the automatic execution cascade (used after replay-based
// state adaptation).
func (mx *Mutable) Cascade() error { return mx.inst.cascadeLocked() }

// SetMarking replaces the instance marking wholesale. The replay-based
// state adaptation path (the ablation baseline to Adapt) installs the
// marking reconstructed by compliance.Replay and then runs Cascade.
func (mx *Mutable) SetMarking(m *state.Marking) { mx.inst.marking = m }
