// Package change implements the ADEPT2 change framework: the complete set
// of high-level change operations (insert, delete, and move activities;
// insert and delete sync edges; data-flow changes), each with
//
//   - a structural precondition (Precheck) evaluated on the schema,
//   - an application procedure (ApplyTo) usable on plain schemas and on
//     biased-instance overlays alike, and
//   - a *fast compliance condition* (FastCompliance) — the per-operation
//     state condition of Fig. 1 of the paper that decides in O(1) whether
//     a running instance may adopt the change, without replaying its
//     execution history.
//
// The fast conditions are exact with respect to the replay-based
// compliance criterion in internal/compliance; the property-based tests in
// that package verify the equivalence on randomized workloads.
package change

import (
	"fmt"

	"adept2/internal/data"
	"adept2/internal/history"
	"adept2/internal/model"
	"adept2/internal/state"
)

// Context carries the instance facets a fast compliance condition
// consults: the current schema view, the marking, the per-node execution
// index, and the data store. All reads are O(1) per queried node.
type Context struct {
	View    model.SchemaView
	Marking *state.Marking
	Stats   *history.Stats
	Store   *data.Store
}

// started reports whether the node entered execution in the current loop
// iteration.
func (c *Context) started(node string) bool { return c.Stats.Started(node) }

// ComplianceError describes a state-related conflict: the instance has
// progressed beyond the point the operation touches.
type ComplianceError struct {
	Op     string
	Reason string
}

func (e *ComplianceError) Error() string {
	return fmt.Sprintf("change: %s: state conflict: %s", e.Op, e.Reason)
}

func stateConflict(op, format string, args ...any) error {
	return &ComplianceError{Op: op, Reason: fmt.Sprintf(format, args...)}
}

// Operation is one ADEPT2 change operation. Operations implement
// engine.BiasOp, so recorded instance biases can be re-applied by the
// engine when materializing on-the-fly views and re-based onto new schema
// versions during migration.
type Operation interface {
	// OpName identifies the operation kind (stable, used in JSON).
	OpName() string
	// Precheck validates structural preconditions against a view.
	Precheck(v model.SchemaView) error
	// ApplyTo applies the operation to a mutable view. The caller is
	// responsible for running the verifier on the result (the framework
	// helpers in this package do).
	ApplyTo(v model.MutableView) error
	// FastCompliance evaluates the operation's state condition against a
	// running instance. nil means the instance can adopt the change.
	FastCompliance(ctx *Context) error
	// InsertedTemplate returns the activity template the operation inserts
	// ("" for non-inserting operations); semantical conflict detection
	// compares these across concurrent changes.
	InsertedTemplate() string
	// String renders the operation for reports.
	String() string
}

// InsertedTemplates collects the activity templates inserted by a change.
func InsertedTemplates(ops []Operation) map[string]bool {
	out := make(map[string]bool)
	for _, op := range ops {
		if t := op.InsertedTemplate(); t != "" {
			out[t] = true
		}
	}
	return out
}
