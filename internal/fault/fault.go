// Package fault classifies errors across the internal layers without
// disturbing their messages: an error site tags its error with a Kind
// (not-found, conflict, denied, …) and the facade maps the kind onto the
// public adept2.Error taxonomy. Tagging is transparent — Error() renders
// exactly the wrapped message, errors.Is/As keep working through Unwrap —
// so existing message-matching callers and tests are unaffected.
package fault

import (
	"errors"
	"fmt"
)

// Kind is the machine-readable class of a failure.
type Kind uint8

const (
	// Internal is the default for untagged errors (I/O, corruption, bugs).
	Internal Kind = iota
	// Invalid marks malformed or unsatisfiable requests (bad command
	// arguments, missing mandatory data, unknown change operations).
	Invalid
	// NotFound marks lookups of unknown entities (instances, schemas,
	// nodes, work items, process types).
	NotFound
	// Conflict marks requests that contradict current state (duplicate
	// IDs, wrong node state, releasing an unclaimed item).
	Conflict
	// Denied marks authorization failures (role mismatches, claiming a
	// work item without being a candidate).
	Denied
	// Suspended marks operations refused because the instance is
	// suspended.
	Suspended
	// Completed marks operations refused because the instance already
	// finished.
	Completed
	// NotCompliant marks change/migration refusals by the correctness
	// criterion (structural conflicts, state conditions, undo past
	// progress).
	NotCompliant
	// VersionSkew marks version-ordering violations (deploying a stale
	// schema version, opening a layout with a conflicting shard count).
	VersionSkew
	// Unrecoverable marks durability-layer refusals to rebuild state
	// (truncated journals, compacted journals without a bridging
	// snapshot, dangling epochs, shard-count mismatches in the data).
	Unrecoverable
	// Failed marks process-level activity failures (a FailActivity
	// command's recorded reason surfacing as an exception).
	Failed
	// Timeout marks deadline expiries: a running activity exceeded its
	// armed deadline.
	Timeout
)

// tagged attaches a Kind to an error. It renders and unwraps
// transparently.
type tagged struct {
	err  error
	kind Kind
}

func (t *tagged) Error() string { return t.err.Error() }
func (t *tagged) Unwrap() error { return t.err }

// Tag attaches a kind to an existing error (nil stays nil).
func Tag(kind Kind, err error) error {
	if err == nil {
		return nil
	}
	return &tagged{err: err, kind: kind}
}

// Tagf is fmt.Errorf with a kind attached; %w works as usual.
func Tagf(kind Kind, format string, args ...any) error {
	return &tagged{err: fmt.Errorf(format, args...), kind: kind}
}

// KindOf returns the outermost explicit kind on the error chain, or
// Internal when the error is untagged (or nil).
func KindOf(err error) Kind {
	var t *tagged
	if errors.As(err, &t) {
		return t.kind
	}
	return Internal
}
