package storage

import (
	"testing"

	"adept2/internal/model"
)

func baseSchema(t *testing.T) *model.Schema {
	t.Helper()
	b := model.NewBuilder("base")
	b.DataElement("d", model.TypeString)
	a := b.Activity("a", "A", model.WithRole("r"))
	c := b.Activity("c", "C", model.WithRole("r"))
	x := b.Activity("x", "X", model.WithRole("r"))
	b.Write("a", "d", "out")
	b.Read("c", "d", "in", true)
	s, err := b.Build(b.Seq(a, c, x))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return s
}

func TestOverlayTransparentWhenEmpty(t *testing.T) {
	base := baseSchema(t)
	o := NewOverlay(base)
	if !o.IsEmpty() {
		t.Fatal("fresh overlay must be empty")
	}
	if !model.Equal(base, o) {
		t.Fatal("empty overlay must equal base")
	}
	if o.SchemaID() != base.SchemaID()+"+bias" {
		t.Fatalf("SchemaID = %q", o.SchemaID())
	}
	if o.TypeName() != "base" || o.Version() != 1 {
		t.Fatal("metadata passthrough")
	}
	if o.StartID() != base.StartID() || o.EndID() != base.EndID() {
		t.Fatal("start/end passthrough")
	}
	if o.ApproxBytes() != 0 {
		t.Fatal("empty overlay must cost ~0 bytes")
	}
}

func TestOverlayAddAndRemove(t *testing.T) {
	base := baseSchema(t)
	o := NewOverlay(base)
	// Insert n between a and c (the serial-insert rewiring).
	if err := o.RemoveEdge(model.EdgeKey{From: "a", To: "c", Type: model.EdgeControl}); err != nil {
		t.Fatal(err)
	}
	if err := o.AddNode(&model.Node{ID: "n", Type: model.NodeActivity, Role: "r"}); err != nil {
		t.Fatal(err)
	}
	if err := o.AddEdge(&model.Edge{From: "a", To: "n", Type: model.EdgeControl}); err != nil {
		t.Fatal(err)
	}
	if err := o.AddEdge(&model.Edge{From: "n", To: "c", Type: model.EdgeControl}); err != nil {
		t.Fatal(err)
	}
	if o.IsEmpty() {
		t.Fatal("overlay should carry a delta")
	}
	if _, ok := o.Node("n"); !ok {
		t.Fatal("added node invisible")
	}
	if o.HasEdge(model.EdgeKey{From: "a", To: "c", Type: model.EdgeControl}) {
		t.Fatal("removed edge still visible")
	}
	if got := model.ControlSuccs(o, "a"); len(got) != 1 || got[0] != "n" {
		t.Fatalf("ControlSuccs(a) = %v", got)
	}
	if got := model.ControlPreds(o, "c"); len(got) != 1 || got[0] != "n" {
		t.Fatalf("ControlPreds(c) = %v", got)
	}
	// The base is untouched.
	if _, ok := base.Node("n"); ok {
		t.Fatal("overlay mutation leaked into base")
	}
	if !base.HasEdge(model.EdgeKey{From: "a", To: "c", Type: model.EdgeControl}) {
		t.Fatal("base edge removed")
	}
	// Node enumeration contains base and added nodes exactly once.
	seen := map[string]int{}
	for _, id := range o.NodeIDs() {
		seen[id]++
	}
	if seen["n"] != 1 || seen["a"] != 1 || len(seen) != base.NumNodes()+1 {
		t.Fatalf("NodeIDs = %v", o.NodeIDs())
	}
	d := o.Delta()
	if d.AddedNodes != 1 || d.AddedEdges != 2 || d.RemovedEdges != 1 {
		t.Fatalf("delta = %+v", d)
	}
	if o.ApproxBytes() == 0 {
		t.Fatal("delta must have a footprint")
	}
	touched := o.TouchedNodes()
	if len(touched) == 0 {
		t.Fatal("touched nodes empty")
	}
}

func TestOverlayMatchesDirectApplication(t *testing.T) {
	base := baseSchema(t)
	o := NewOverlay(base)
	ref := base.Clone()

	apply := func(v model.MutableView) {
		if err := v.RemoveEdge(model.EdgeKey{From: "c", To: "x", Type: model.EdgeControl}); err != nil {
			t.Fatal(err)
		}
		if err := v.AddNode(&model.Node{ID: "n", Type: model.NodeActivity, Role: "r"}); err != nil {
			t.Fatal(err)
		}
		if err := v.AddEdge(&model.Edge{From: "c", To: "n", Type: model.EdgeControl}); err != nil {
			t.Fatal(err)
		}
		if err := v.AddEdge(&model.Edge{From: "n", To: "x", Type: model.EdgeControl}); err != nil {
			t.Fatal(err)
		}
		if err := v.AddDataElement(&model.DataElement{ID: "e2", Type: model.TypeInt}); err != nil {
			t.Fatal(err)
		}
		if err := v.AddDataEdge(&model.DataEdge{Activity: "n", Element: "e2", Access: model.Write, Parameter: "p"}); err != nil {
			t.Fatal(err)
		}
		if err := v.RemoveDataEdge(model.DataEdgeKey{Activity: "c", Element: "d", Access: model.Read, Parameter: "in"}); err != nil {
			t.Fatal(err)
		}
	}
	apply(o)
	apply(ref)
	if !model.Equal(ref, o) {
		t.Fatal("overlay view differs from direct application")
	}
	// Materialization produces an equal standalone schema.
	mat, err := Materialize(o, "mat", "base", 1)
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	if !model.Equal(ref, mat) {
		t.Fatal("materialization differs")
	}
}

func TestOverlayRemoveThenReAdd(t *testing.T) {
	base := baseSchema(t)
	o := NewOverlay(base)
	// Detach and delete x, then re-add it elsewhere (the move pattern).
	for _, k := range []model.EdgeKey{
		{From: "c", To: "x", Type: model.EdgeControl},
		{From: "x", To: "end", Type: model.EdgeControl},
	} {
		if err := o.RemoveEdge(k); err != nil {
			t.Fatal(err)
		}
	}
	if err := o.AddEdge(&model.Edge{From: "c", To: "end", Type: model.EdgeControl}); err != nil {
		t.Fatal(err)
	}
	if err := o.RemoveNode("x"); err != nil {
		t.Fatal(err)
	}
	if _, ok := o.Node("x"); ok {
		t.Fatal("x should be hidden")
	}
	// Re-add between a and c.
	if err := o.AddNode(&model.Node{ID: "x", Type: model.NodeActivity, Role: "r"}); err != nil {
		t.Fatalf("re-add: %v", err)
	}
	if err := o.RemoveEdge(model.EdgeKey{From: "a", To: "c", Type: model.EdgeControl}); err != nil {
		t.Fatal(err)
	}
	if err := o.AddEdge(&model.Edge{From: "a", To: "x", Type: model.EdgeControl}); err != nil {
		t.Fatal(err)
	}
	if err := o.AddEdge(&model.Edge{From: "x", To: "c", Type: model.EdgeControl}); err != nil {
		t.Fatal(err)
	}
	if _, ok := o.Node("x"); !ok {
		t.Fatal("re-added node invisible")
	}
	// Removing the re-added node hides it again (base stays hidden too).
	for _, k := range []model.EdgeKey{
		{From: "a", To: "x", Type: model.EdgeControl},
		{From: "x", To: "c", Type: model.EdgeControl},
	} {
		if err := o.RemoveEdge(k); err != nil {
			t.Fatal(err)
		}
	}
	if err := o.AddEdge(&model.Edge{From: "a", To: "c", Type: model.EdgeControl}); err != nil {
		t.Fatal(err)
	}
	if err := o.RemoveNode("x"); err != nil {
		t.Fatal(err)
	}
	if _, ok := o.Node("x"); ok {
		t.Fatal("x should be hidden after second removal")
	}
}

func TestOverlayValidation(t *testing.T) {
	base := baseSchema(t)
	o := NewOverlay(base)
	cases := []struct {
		name string
		err  error
	}{
		{"dup node", o.AddNode(&model.Node{ID: "a", Type: model.NodeActivity})},
		{"empty node", o.AddNode(&model.Node{})},
		{"second start", o.AddNode(&model.Node{ID: "s2", Type: model.NodeStart})},
		{"second end", o.AddNode(&model.Node{ID: "e2", Type: model.NodeEnd})},
		{"self edge", o.AddEdge(&model.Edge{From: "a", To: "a", Type: model.EdgeControl})},
		{"unknown source", o.AddEdge(&model.Edge{From: "zz", To: "a", Type: model.EdgeControl})},
		{"unknown target", o.AddEdge(&model.Edge{From: "a", To: "zz", Type: model.EdgeControl})},
		{"dup edge", o.AddEdge(&model.Edge{From: "a", To: "c", Type: model.EdgeControl})},
		{"remove node with edges", o.RemoveNode("a")},
		{"remove missing node", o.RemoveNode("zz")},
		{"remove missing edge", o.RemoveEdge(model.EdgeKey{From: "c", To: "a", Type: model.EdgeControl})},
		{"dup data element", o.AddDataElement(&model.DataElement{ID: "d"})},
		{"empty data element", o.AddDataElement(&model.DataElement{})},
		{"data edge unknown activity", o.AddDataEdge(&model.DataEdge{Activity: "zz", Element: "d", Parameter: "p"})},
		{"data edge unknown element", o.AddDataEdge(&model.DataEdge{Activity: "a", Element: "zz", Parameter: "p"})},
		{"data edge empty param", o.AddDataEdge(&model.DataEdge{Activity: "a", Element: "d"})},
		{"dup data edge", o.AddDataEdge(&model.DataEdge{Activity: "a", Element: "d", Access: model.Write, Parameter: "out"})},
		{"remove element with edges", o.RemoveDataElement("d")},
		{"remove missing element", o.RemoveDataElement("zz")},
		{"remove missing data edge", o.RemoveDataEdge(model.DataEdgeKey{Activity: "a", Element: "d", Access: model.Read, Parameter: "zz"})},
	}
	for _, c := range cases {
		if c.err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	if !o.IsEmpty() {
		t.Fatal("failed mutations must leave the overlay empty")
	}
}

func TestOverlayDataElementOps(t *testing.T) {
	base := baseSchema(t)
	o := NewOverlay(base)
	if err := o.AddDataElement(&model.DataElement{ID: "n1", Type: model.TypeBool}); err != nil {
		t.Fatal(err)
	}
	if got := len(o.DataElements()); got != 2 {
		t.Fatalf("data elements = %d", got)
	}
	if err := o.RemoveDataElement("n1"); err != nil {
		t.Fatal(err)
	}
	if got := len(o.DataElements()); got != 1 {
		t.Fatalf("after removal: %d", got)
	}
	// Removing a base element requires its edges gone first.
	if err := o.RemoveDataEdge(model.DataEdgeKey{Activity: "a", Element: "d", Access: model.Write, Parameter: "out"}); err != nil {
		t.Fatal(err)
	}
	if err := o.RemoveDataEdge(model.DataEdgeKey{Activity: "c", Element: "d", Access: model.Read, Parameter: "in"}); err != nil {
		t.Fatal(err)
	}
	if err := o.RemoveDataElement("d"); err != nil {
		t.Fatal(err)
	}
	if _, ok := o.DataElement("d"); ok {
		t.Fatal("base element should be hidden")
	}
	if _, ok := base.DataElement("d"); !ok {
		t.Fatal("base must be untouched")
	}
}

func TestRebase(t *testing.T) {
	base := baseSchema(t)
	o := NewOverlay(base)
	if err := o.AddNode(&model.Node{ID: "n", Type: model.NodeActivity, Role: "r"}); err != nil {
		t.Fatal(err)
	}
	base2 := baseSchema(t)
	base2.SetVersion(2)
	o.Rebase(base2)
	if o.Base() != base2 || o.Version() != 2 {
		t.Fatal("rebase failed")
	}
	if _, ok := o.Node("n"); !ok {
		t.Fatal("delta lost on rebase")
	}
}

func TestStrategyStrings(t *testing.T) {
	if Hybrid.String() != "hybrid" || FullCopy.String() != "full-copy" || OnTheFly.String() != "on-the-fly" {
		t.Fatal("strategy strings")
	}
	if Strategy(9).String() == "" {
		t.Fatal("out-of-range string")
	}
	if len(Strategies()) != 3 {
		t.Fatal("strategies enumeration")
	}
}
