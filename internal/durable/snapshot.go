package durable

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"adept2/internal/persist"
	"adept2/internal/vfs"
)

// Snapshot container versions: v1 stores the SystemState JSON payload
// raw, v2 gzip-compresses it (the payload is highly repetitive — node
// IDs, marking vocabularies — so compression is cheap and large). New
// snapshots are written as v2; both versions load.
const (
	containerRaw  = 1
	containerGzip = 2
)

// snapHeader is the first line of a snapshot file; the payload follows as
// exactly Len bytes with CRC-32 (IEEE) checksum CRC32 over the stored
// (possibly compressed) bytes. RawLen records the uncompressed payload
// size for v2 containers (equal to Len for v1, where it is omitted).
type snapHeader struct {
	Format int    `json:"format"`
	Seq    int    `json:"seq"`
	Len    int    `json:"len"`
	CRC32  uint32 `json:"crc32"`
	RawLen int    `json:"rawLen,omitempty"`
}

// ManifestEntry ties one snapshot file to the journal sequence number it
// covers.
type ManifestEntry struct {
	File string `json:"file"`
	Seq  int    `json:"seq"`
}

// Manifest lists the snapshots of a store, ascending by sequence number.
// It is advisory: recovery enumerates the directory (so a crash between
// snapshot rename and manifest rewrite — a stale manifest — costs
// nothing), and validates every snapshot header independently.
type Manifest struct {
	Format    int             `json:"format"`
	Snapshots []ManifestEntry `json:"snapshots"`
}

// SnapshotStore reads and writes checkpoint files in one directory.
type SnapshotStore struct {
	fsys vfs.FS
	dir  string

	// cleanupErrs counts failed removals of stale snapshot and temp
	// files. A failed cleanup never fails the checkpoint that triggered
	// it (the new snapshot is durable; the stale file only wastes disk),
	// but silence would hide a filling disk — the facade surfaces the
	// counter through System.HealthInfo.
	cleanupErrs atomic.Int64

	// bytesWritten/bytesRead count on-disk snapshot I/O volume (container
	// bytes: header + stored payload) for the stats plane.
	bytesWritten atomic.Int64
	bytesRead    atomic.Int64
}

// ManifestName is the file name of the snapshot manifest.
const ManifestName = "MANIFEST.json"

const snapPrefix, snapSuffix = "snap-", ".json"

// OpenStore opens (creating if needed) a snapshot directory. Orphaned
// temp files left by a crash mid-write are swept; the store assumes a
// single owning process (as the facade guarantees).
func OpenStore(dir string) (*SnapshotStore, error) {
	return OpenStoreFS(vfs.OS(), dir)
}

// OpenStoreFS is OpenStore over an explicit filesystem.
func OpenStoreFS(fsys vfs.FS, dir string) (*SnapshotStore, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: open snapshot store: %w", err)
	}
	st := &SnapshotStore{fsys: fsys, dir: dir}
	if des, err := fsys.ReadDir(dir); err == nil {
		for _, de := range des {
			if !de.IsDir() && strings.Contains(de.Name(), ".tmp-") {
				if err := fsys.Remove(filepath.Join(dir, de.Name())); err != nil && !os.IsNotExist(err) {
					st.cleanupErrs.Add(1)
				}
			}
		}
	}
	return st, nil
}

// CleanupErrs returns how many stale-file removals have failed over the
// store's lifetime (orphaned temp sweeps and snapshot pruning).
func (st *SnapshotStore) CleanupErrs() int64 { return st.cleanupErrs.Load() }

// BytesWritten returns the snapshot bytes written over the store's
// lifetime (container bytes, i.e. post-compression).
func (st *SnapshotStore) BytesWritten() int64 { return st.bytesWritten.Load() }

// BytesRead returns the snapshot bytes read by Load over the store's
// lifetime (recovery and explicit loads).
func (st *SnapshotStore) BytesRead() int64 { return st.bytesRead.Load() }

// Dir returns the store directory.
func (st *SnapshotStore) Dir() string { return st.dir }

// fileFor returns the snapshot file name covering seq. Sharded states
// (epoch > 0) qualify the name with the control epoch: a shard whose
// journal did not advance between two checkpoint cuts would otherwise
// reuse the name and overwrite an older generation's part — and its
// state CAN differ at the same sequence number, because a schema
// evolution on the control log migrates instances without touching the
// data shard's journal. Same seq and same epoch imply identical state,
// so that residual sharing is safe.
func fileFor(seq, epoch int) string {
	if epoch > 0 {
		return fmt.Sprintf("%s%012d.e%09d%s", snapPrefix, seq, epoch, snapSuffix)
	}
	return fmt.Sprintf("%s%012d%s", snapPrefix, seq, snapSuffix)
}

// seqOf parses the sequence number out of a snapshot file name (either
// the plain or the epoch-qualified form).
func seqOf(name string) (int, bool) {
	if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
		return 0, false
	}
	core := strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix)
	if i := strings.Index(core, ".e"); i >= 0 {
		if _, err := strconv.Atoi(core[i+2:]); err != nil {
			return 0, false
		}
		core = core[:i]
	}
	n, err := strconv.Atoi(core)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// Write persists the state as a new snapshot: payload to a temp file,
// fsync, atomic rename, directory fsync, then the manifest is rewritten
// the same way. A crash at any point leaves older snapshots untouched.
func (st *SnapshotStore) Write(state *SystemState) (string, error) {
	file, err := st.write(state)
	if err != nil {
		return "", err
	}
	return file, st.writeManifest()
}

// WriteAndPrune is Write followed by Prune with a single manifest rewrite
// (the steady-state checkpoint path would otherwise pay two temp-file +
// fsync + rename passes for the manifest per snapshot).
func (st *SnapshotStore) WriteAndPrune(state *SystemState, keep int) (string, error) {
	file, err := st.write(state)
	if err != nil {
		return "", err
	}
	if err := st.prune(keep); err != nil {
		return file, err
	}
	return file, st.writeManifest()
}

// write persists the snapshot file without touching the manifest.
func (st *SnapshotStore) write(state *SystemState) (string, error) {
	raw, err := json.Marshal(state)
	if err != nil {
		return "", fmt.Errorf("durable: marshal snapshot: %w", err)
	}
	// v2 container: gzip at the fastest level — checkpoint latency
	// matters more than the last few percent of ratio on this payload.
	var gz bytes.Buffer
	zw, _ := gzip.NewWriterLevel(&gz, gzip.BestSpeed)
	if _, err := zw.Write(raw); err != nil {
		return "", fmt.Errorf("durable: compress snapshot: %w", err)
	}
	if err := zw.Close(); err != nil {
		return "", fmt.Errorf("durable: compress snapshot: %w", err)
	}
	payload := gz.Bytes()
	hdr, err := json.Marshal(snapHeader{
		Format: containerGzip,
		Seq:    state.Seq,
		Len:    len(payload),
		CRC32:  crc32.ChecksumIEEE(payload),
		RawLen: len(raw),
	})
	if err != nil {
		return "", fmt.Errorf("durable: marshal snapshot header: %w", err)
	}
	name := fileFor(state.Seq, state.Epoch)
	var buf bytes.Buffer
	buf.Grow(len(hdr) + 1 + len(payload))
	buf.Write(hdr)
	buf.WriteByte('\n')
	buf.Write(payload)
	if err := AtomicWriteFS(st.fsys, st.dir, name, buf.Bytes()); err != nil {
		return "", err
	}
	st.bytesWritten.Add(int64(buf.Len()))
	return filepath.Join(st.dir, name), nil
}

// AtomicWrite writes name in dir via temp file + fsync + rename + dir
// fsync.
func AtomicWrite(dir, name string, data []byte) error {
	return AtomicWriteFS(vfs.OS(), dir, name, data)
}

// AtomicWriteFS is AtomicWrite over an explicit filesystem. The
// directory fsync error is propagated: until it returns, the rename is
// not durable, and a caller that reported success anyway could lose an
// acknowledged checkpoint to a crash (the torn-rename window).
func AtomicWriteFS(fsys vfs.FS, dir, name string, data []byte) error {
	tmp, err := vfs.CreateTemp(fsys, dir, name+".tmp-*")
	if err != nil {
		return fmt.Errorf("durable: write %s: %w", name, err)
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); fsys.Remove(tmpName) }
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return fmt.Errorf("durable: write %s: %w", name, err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("durable: fsync %s: %w", name, err)
	}
	if err := tmp.Close(); err != nil {
		fsys.Remove(tmpName)
		return fmt.Errorf("durable: close %s: %w", name, err)
	}
	if err := fsys.Rename(tmpName, filepath.Join(dir, name)); err != nil {
		fsys.Remove(tmpName)
		return fmt.Errorf("durable: rename %s: %w", name, err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("durable: fsync dir for %s: %w", name, err)
	}
	return nil
}

// Entries lists the snapshots present in the store, ascending by sequence
// number. The listing comes from the directory, not the manifest, so a
// stale or missing manifest never hides a durable snapshot.
func (st *SnapshotStore) Entries() ([]ManifestEntry, error) {
	des, err := st.fsys.ReadDir(st.dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("durable: list snapshots: %w", err)
	}
	var out []ManifestEntry
	for _, de := range des {
		if de.IsDir() {
			continue
		}
		if seq, ok := seqOf(de.Name()); ok {
			out = append(out, ManifestEntry{File: de.Name(), Seq: seq})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nil
}

// writeManifest atomically rewrites the manifest from the directory
// listing.
func (st *SnapshotStore) writeManifest() error {
	entries, err := st.Entries()
	if err != nil {
		return err
	}
	blob, err := json.MarshalIndent(&Manifest{Format: FormatVersion, Snapshots: entries}, "", "  ")
	if err != nil {
		return fmt.Errorf("durable: marshal manifest: %w", err)
	}
	return AtomicWriteFS(st.fsys, st.dir, ManifestName, blob)
}

// ReadManifest parses the manifest (advisory; see Manifest).
func (st *SnapshotStore) ReadManifest() (*Manifest, error) {
	blob, err := vfs.ReadFile(st.fsys, filepath.Join(st.dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("durable: read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return nil, fmt.Errorf("durable: parse manifest: %w", err)
	}
	return &m, nil
}

// Load reads and fully validates one snapshot: header format, length, and
// checksum. Any mismatch (torn tail, corruption, version skew) returns an
// error; the caller falls back to an older snapshot or a full replay.
func (st *SnapshotStore) Load(entry ManifestEntry) (*SystemState, error) {
	f, err := vfs.Open(st.fsys, filepath.Join(st.dir, entry.File))
	if err != nil {
		return nil, fmt.Errorf("durable: open snapshot %s: %w", entry.File, err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	hdrLine, err := br.ReadBytes('\n')
	if err != nil {
		return nil, fmt.Errorf("durable: snapshot %s: torn header: %w", entry.File, err)
	}
	var hdr snapHeader
	if err := json.Unmarshal(hdrLine, &hdr); err != nil {
		return nil, fmt.Errorf("durable: snapshot %s: corrupt header: %w", entry.File, err)
	}
	if hdr.Format != containerRaw && hdr.Format != containerGzip {
		return nil, fmt.Errorf("durable: snapshot %s: container format %d, want %d or %d",
			entry.File, hdr.Format, containerRaw, containerGzip)
	}
	if hdr.Seq != entry.Seq {
		return nil, fmt.Errorf("durable: snapshot %s: header seq %d does not match file name", entry.File, hdr.Seq)
	}
	payload := make([]byte, hdr.Len)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, fmt.Errorf("durable: snapshot %s: torn payload: %w", entry.File, err)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("durable: snapshot %s: trailing data after payload", entry.File)
	}
	if crc := crc32.ChecksumIEEE(payload); crc != hdr.CRC32 {
		return nil, fmt.Errorf("durable: snapshot %s: checksum mismatch (%08x != %08x)", entry.File, crc, hdr.CRC32)
	}
	st.bytesRead.Add(int64(len(hdrLine) + hdr.Len))
	if hdr.Format == containerGzip {
		zr, err := gzip.NewReader(bytes.NewReader(payload))
		if err != nil {
			return nil, fmt.Errorf("durable: snapshot %s: corrupt gzip payload: %w", entry.File, err)
		}
		raw, err := io.ReadAll(zr)
		if cerr := zr.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("durable: snapshot %s: corrupt gzip payload: %w", entry.File, err)
		}
		payload = raw
	}
	var state SystemState
	if err := json.Unmarshal(payload, &state); err != nil {
		return nil, fmt.Errorf("durable: snapshot %s: corrupt payload: %w", entry.File, err)
	}
	if state.Seq != hdr.Seq {
		return nil, fmt.Errorf("durable: snapshot %s: payload seq %d != header seq %d", entry.File, state.Seq, hdr.Seq)
	}
	return &state, nil
}

// SnapshotInfo summarizes a snapshot file's header: the journal sequence
// number it covers, the stored (on-disk) payload size, the uncompressed
// payload size, and whether the container is compressed.
type SnapshotInfo struct {
	Seq        int
	StoredLen  int
	RawLen     int
	Compressed bool
}

// ReadSnapshotInfo reads just the header line of a snapshot file (for
// tooling output — adeptctl reports both payload sizes).
func ReadSnapshotInfo(path string) (SnapshotInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return SnapshotInfo{}, fmt.Errorf("durable: open snapshot: %w", err)
	}
	defer f.Close()
	hdrLine, err := bufio.NewReaderSize(f, 4096).ReadBytes('\n')
	if err != nil {
		return SnapshotInfo{}, fmt.Errorf("durable: snapshot %s: torn header: %w", path, err)
	}
	var hdr snapHeader
	if err := json.Unmarshal(hdrLine, &hdr); err != nil {
		return SnapshotInfo{}, fmt.Errorf("durable: snapshot %s: corrupt header: %w", path, err)
	}
	info := SnapshotInfo{Seq: hdr.Seq, StoredLen: hdr.Len, RawLen: hdr.RawLen, Compressed: hdr.Format == containerGzip}
	if info.RawLen == 0 {
		info.RawLen = hdr.Len
	}
	return info, nil
}

// Prune removes all but the newest keep snapshots and rewrites the
// manifest.
func (st *SnapshotStore) Prune(keep int) error {
	if err := st.prune(keep); err != nil {
		return err
	}
	return st.writeManifest()
}

// PruneExcept removes every snapshot file whose name is not in keep and
// rewrites the advisory manifest. The sharded checkpoint path uses it for
// generation-aware pruning: retention is decided by the global manifest's
// generations, not by file count.
func (st *SnapshotStore) PruneExcept(keep map[string]bool) error {
	entries, err := st.Entries()
	if err != nil {
		return err
	}
	for _, e := range entries {
		if keep[e.File] {
			continue
		}
		// A failed removal must not fail the checkpoint that triggered the
		// prune — the new snapshot is already durable. Count it instead
		// (surfaced through HealthInfo) and retry on the next prune pass.
		if err := st.fsys.Remove(filepath.Join(st.dir, e.File)); err != nil && !os.IsNotExist(err) {
			st.cleanupErrs.Add(1)
		}
	}
	return st.writeManifest()
}

// prune removes the stale snapshot files without touching the manifest.
func (st *SnapshotStore) prune(keep int) error {
	entries, err := st.Entries()
	if err != nil {
		return err
	}
	if keep < 1 {
		keep = 1
	}
	if len(entries) <= keep {
		return nil
	}
	for _, e := range entries[:len(entries)-keep] {
		// A concurrent pruner may have removed the file already (explicit
		// Checkpoint overlapping a background one): not an error. Other
		// failures are counted, not returned — see PruneExcept.
		if err := st.fsys.Remove(filepath.Join(st.dir, e.File)); err != nil && !os.IsNotExist(err) {
			st.cleanupErrs.Add(1)
		}
	}
	return nil
}

// CompactJournal rewrites the journal at path to only the records past
// keepSeq (the sequence number a durable snapshot covers), atomically.
// It returns how many records were dropped. The newest record is always
// retained even when the snapshot covers it: a journal emptied completely
// would be indistinguishable from a brand-new one, silently disabling the
// compacted-journal-requires-snapshot guard if the snapshots are ever
// lost. The resulting journal starts past seq 1; recovering it requires a
// snapshot reaching its first record.
func CompactJournal(path string, keepSeq int) (int, error) {
	return CompactJournalFS(vfs.OS(), path, keepSeq)
}

// CompactJournalFS is CompactJournal over an explicit filesystem.
func CompactJournalFS(fsys vfs.FS, path string, keepSeq int) (int, error) {
	// Only the kept suffix needs decoding; the dropped prefix is
	// integrity-scanned by the cheap sequence probe.
	recs, tail, err := persist.LoadJournalSuffixFS(fsys, path, keepSeq)
	if err != nil {
		return 0, err
	}
	if len(recs) == 0 && tail.LastSeq > 0 {
		// Keep the final record as the compaction tombstone.
		keepSeq = tail.LastSeq - 1
		recs, tail, err = persist.LoadJournalSuffixFS(fsys, path, keepSeq)
		if err != nil {
			return 0, err
		}
	}
	dropped := 0
	if tail.FirstSeq > 0 && tail.FirstSeq <= keepSeq {
		end := tail.LastSeq
		if end > keepSeq {
			end = keepSeq
		}
		dropped = end - tail.FirstSeq + 1
	}
	if dropped == 0 {
		return 0, nil
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, rec := range recs {
		if err := enc.Encode(rec); err != nil {
			return 0, fmt.Errorf("durable: compact: %w", err)
		}
	}
	dir, name := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	if err := AtomicWriteFS(fsys, dir, name, buf.Bytes()); err != nil {
		return 0, err
	}
	return dropped, nil
}
