// Package compliance implements the ADEPT2 compliance criterion for
// dynamic process changes: a running instance may adopt a changed schema
// iff its loop-reduced execution history could have been produced on that
// schema (relaxed trace equivalence — entries for newly inserted automatic
// nodes may be interleaved, entries of deleted nodes must not exist).
//
// Replay is the ground-truth checker: it re-executes the reduced history
// on the target schema view event by event. The fast path — the
// per-operation conditions of Fig. 1, implemented on each operation in
// internal/change — answers the same question in O(affected nodes) using
// the instance's marking and execution index; CheckFast evaluates it.
// Property-based tests assert that both paths agree.
package compliance

import (
	"fmt"

	"adept2/internal/change"
	"adept2/internal/data"
	"adept2/internal/graph"
	"adept2/internal/history"
	"adept2/internal/model"
	"adept2/internal/state"
)

// Error reports why a history is not replayable on a schema view.
type Error struct {
	// Event is the first history event that could not be reproduced (nil
	// when the failure is not event-specific).
	Event *history.Event
	// Reason explains the failure.
	Reason string
}

func (e *Error) Error() string {
	if e.Event != nil {
		return fmt.Sprintf("compliance: event %s: %s", e.Event, e.Reason)
	}
	return "compliance: " + e.Reason
}

// ReplayResult carries the state reconstructed by a successful replay.
type ReplayResult struct {
	// Marking is the instance marking after replaying the full history on
	// the target view — i.e. the adapted state a migrated instance
	// receives.
	Marking *state.Marking
	// Store holds the data versions reconstructed from the history.
	Store *data.Store
	// VirtualFirings counts how many newly inserted automatic nodes had to
	// be interleaved (a measure of how much the change affected the
	// already-passed region).
	VirtualFirings int
}

// Replay checks whether the (reduced) history is reproducible on the
// target view and reconstructs the resulting state. info must be the block
// analysis of the target view.
//
// Newly inserted automatic nodes (no event in the history, auto-executable
// per model.Node.CanAutoExecute) are fired virtually whenever a recorded
// event is blocked on them — the "relaxed" part of the trace equivalence.
// Newly inserted manual activities are never fired virtually: if a
// recorded event depends on one, the instance is not compliant.
func Replay(view model.SchemaView, info *graph.Info, events []*history.Event) (*ReplayResult, error) {
	m := state.NewMarking()
	m.Init(view)
	store := data.NewStore()

	inHistory := make(map[string]bool, len(events))
	for _, e := range events {
		inHistory[e.Node] = true
	}

	res := &ReplayResult{Marking: m, Store: store}
	state.Evaluate(view, m, 0)

	for _, e := range events {
		n, ok := view.Node(e.Node)
		if !ok {
			return nil, &Error{Event: e, Reason: "node no longer exists in the target schema"}
		}
		switch e.Kind {
		case history.Started:
			for m.Node(e.Node) != state.Activated {
				if !fireVirtual(view, info, m, store, inHistory, e.Seq, res) {
					return nil, &Error{Event: e, Reason: fmt.Sprintf("node is %s and cannot become activated", m.Node(e.Node))}
				}
				state.Evaluate(view, m, e.Seq)
			}
			// Mandatory inputs must have been available.
			for _, de := range view.DataEdgesOf(e.Node) {
				if de.Access == model.Read && de.Mandatory && !store.Has(de.Element) {
					return nil, &Error{Event: e, Reason: fmt.Sprintf("mandatory input element %q had no value", de.Element)}
				}
			}
			if err := m.Start(e.Node); err != nil {
				return nil, &Error{Event: e, Reason: err.Error()}
			}
		case history.Completed:
			if m.Node(e.Node) != state.Running {
				return nil, &Error{Event: e, Reason: fmt.Sprintf("node is %s, not running", m.Node(e.Node))}
			}
			// The recorded routing decision must still be possible.
			if n.Type == model.NodeXORSplit {
				found := false
				for _, edge := range model.OutControlEdges(view, e.Node) {
					if edge.Code == e.Decision {
						found = true
						break
					}
				}
				if !found {
					return nil, &Error{Event: e, Reason: fmt.Sprintf("selected branch (code %d) no longer exists", e.Decision)}
				}
			}
			// Outputs must exactly cover the write edges of the target
			// schema.
			for _, de := range view.DataEdgesOf(e.Node) {
				if de.Access != model.Write {
					continue
				}
				if _, ok := e.Writes[de.Element]; !ok {
					return nil, &Error{Event: e, Reason: fmt.Sprintf("completion wrote no value for element %q required by the target schema", de.Element)}
				}
			}
			for elem, val := range e.Writes {
				if !writesElement(view, e.Node, elem) {
					return nil, &Error{Event: e, Reason: fmt.Sprintf("recorded write of element %q has no data edge in the target schema", elem)}
				}
				store.Write(elem, val, e.Node, e.Seq)
			}
			if n.Type == model.NodeLoopEnd && e.Again {
				blk, ok := info.ByJoin(e.Node)
				if !ok {
					return nil, &Error{Event: e, Reason: "loop end has no loop block in the target schema"}
				}
				state.ResetLoop(view, m, blk.Region())
			} else {
				if err := m.Complete(view, e.Node, e.Decision); err != nil {
					return nil, &Error{Event: e, Reason: err.Error()}
				}
			}
		}
		state.Evaluate(view, m, e.Seq)
	}
	return res, nil
}

// fireVirtual starts and completes one newly inserted automatic node, in
// deterministic schema order. It returns false when no such node is
// enabled.
func fireVirtual(view model.SchemaView, info *graph.Info, m *state.Marking, store *data.Store, inHistory map[string]bool, seq int, res *ReplayResult) bool {
	for _, id := range view.NodeIDs() {
		if m.Node(id) != state.Activated || inHistory[id] {
			continue
		}
		n, _ := view.Node(id)
		if !n.CanAutoExecute() {
			continue
		}
		if err := m.Start(id); err != nil {
			continue
		}
		decision := -1
		if n.Type == model.NodeXORSplit {
			decision = virtualDecision(view, store, n)
		}
		// Virtual completions zero-fill their write edges, mirroring the
		// engine's automatic execution.
		for _, de := range view.DataEdgesOf(id) {
			if de.Access != model.Write {
				continue
			}
			if elem, ok := view.DataElement(de.Element); ok {
				store.Write(de.Element, elem.Type.ZeroValue(), id, seq)
			}
		}
		if n.Type == model.NodeLoopEnd {
			// Virtual loops never iterate during replay.
			if err := m.Complete(view, id, -1); err != nil {
				continue
			}
		} else if err := m.Complete(view, id, decision); err != nil {
			continue
		}
		res.VirtualFirings++
		return true
	}
	_ = info
	return false
}

// virtualDecision resolves an XOR decision for a virtually fired split:
// the decision element's current value, clamped to the lowest existing
// code — identical to the engine's clamping rule.
func virtualDecision(view model.SchemaView, store *data.Store, n *model.Node) int {
	outs := model.OutControlEdges(view, n.ID)
	min := outs[0].Code
	for _, e := range outs {
		if e.Code < min {
			min = e.Code
		}
	}
	if n.DecisionElement == "" {
		return min
	}
	val, ok := store.Read(n.DecisionElement)
	if !ok {
		return min
	}
	want, ok := data.AsInt(val)
	if !ok {
		return min
	}
	for _, e := range outs {
		if e.Code == want {
			return want
		}
	}
	return min
}

func writesElement(v model.SchemaView, node, elem string) bool {
	for _, de := range v.DataEdgesOf(node) {
		if de.Access == model.Write && de.Element == elem {
			return true
		}
	}
	return false
}

// CheckFast evaluates the fast per-operation compliance conditions (paper
// Fig. 1) of a change against a running instance. It returns nil when the
// instance may adopt the change.
func CheckFast(ctx *change.Context, ops []change.Operation) error {
	for _, op := range ops {
		if err := op.FastCompliance(ctx); err != nil {
			return err
		}
	}
	return nil
}
