package durable

import (
	"encoding/json"
	"fmt"

	"adept2/internal/change"
	"adept2/internal/engine"
	"adept2/internal/model"
	"adept2/internal/org"
	"adept2/internal/worklist"
)

// FormatVersion is the snapshot payload format this build writes and
// accepts. Recovery treats any other version as skew and falls back.
const FormatVersion = 1

// SystemState is the complete serialized engine state a snapshot carries:
// everything OpenSystem needs to resume without replaying the journal
// prefix the snapshot covers.
type SystemState struct {
	Format int `json:"format"`
	// Seq is the journal sequence number the state reflects: every record
	// with Seq' <= Seq is folded in, none after. In a sharded layout this
	// is the owning shard's journal sequence number.
	Seq int `json:"seq"`
	// Epoch is the control-log cut the state was captured at (sharded
	// layouts only; see internal/durable/sharded). Zero otherwise.
	Epoch           int                        `json:"epoch,omitempty"`
	InstanceCounter int                        `json:"instanceCounter"`
	Users           []*org.User                `json:"users,omitempty"`
	Schemas         []json.RawMessage          `json:"schemas,omitempty"`
	Instances       []*engine.InstanceSnapshot `json:"instances,omitempty"`
	Worklist        *worklist.ManagerExport    `json:"worklist,omitempty"`
}

// StagedCapture is the cheap in-memory clone of the engine state taken
// under the facade's snapshot barrier. Only Stage must run inside the
// barrier — it clones per-instance facets and collects shared references
// without any JSON work; Encode (marshaling schemas, bias payloads) runs
// after the barrier is released so commands are not stalled behind
// serialization.
type StagedCapture struct {
	seq     int
	epoch   int
	counter int
	users   []*org.User
	schemas []*model.Schema // deployed schemas are immutable: refs suffice
	insts   []stagedInstance
	wl      *worklist.ManagerExport
}

type stagedInstance struct {
	snap *engine.InstanceSnapshot
	bias []engine.BiasOp
}

// Stage clones the engine state at journal sequence seq. The caller must
// guarantee a command boundary: no state-changing command may run between
// reading seq and the per-instance exports (the facade holds its snapshot
// barrier across Stage).
func Stage(eng *engine.Engine, seq int) *StagedCapture {
	sc := &StagedCapture{
		seq:     seq,
		counter: eng.InstanceCounter(),
		users:   eng.Org().AllUsers(),
		schemas: eng.AllSchemas(),
		wl:      eng.Worklist().Export(),
	}
	for _, inst := range eng.Instances() {
		snap, biasOps := inst.Snapshot()
		sc.insts = append(sc.insts, stagedInstance{snap: snap, bias: biasOps})
	}
	return sc
}

// Split partitions a staged capture into n per-shard captures sharing the
// consistent cut Stage observed: shard k receives the instances shardOf
// assigns to it plus the journal sequence number seqs[k] its snapshot
// covers; shard 0 additionally carries the control state (users, schemas,
// worklist, instance counter). All parts record the same control epoch, so
// recovery can re-establish the cut. Safe outside the barrier — it only
// re-buckets the already-cloned staged state.
func (sc *StagedCapture) Split(seqs []int, epoch int, shardOf func(instID string) int) []*StagedCapture {
	parts := make([]*StagedCapture, len(seqs))
	for k := range parts {
		parts[k] = &StagedCapture{seq: seqs[k], epoch: epoch}
	}
	parts[0].counter = sc.counter
	parts[0].users = sc.users
	parts[0].schemas = sc.schemas
	parts[0].wl = sc.wl
	for _, si := range sc.insts {
		k := shardOf(si.snap.ID)
		parts[k].insts = append(parts[k].insts, si)
	}
	return parts
}

// Encode serializes a staged capture into the snapshot payload. Safe to
// call outside the barrier: everything it touches is either cloned
// (instance facets) or immutable (deployed schemas, bias operations).
func (sc *StagedCapture) Encode() (*SystemState, error) {
	st := &SystemState{
		Format:          FormatVersion,
		Seq:             sc.seq,
		Epoch:           sc.epoch,
		InstanceCounter: sc.counter,
		Users:           sc.users,
		Worklist:        sc.wl,
	}
	for _, s := range sc.schemas {
		blob, err := json.Marshal(s)
		if err != nil {
			return nil, fmt.Errorf("durable: capture schema %s v%d: %w", s.TypeName(), s.Version(), err)
		}
		st.Schemas = append(st.Schemas, blob)
	}
	for _, si := range sc.insts {
		if len(si.bias) > 0 {
			ops, err := change.AsOperations(si.bias)
			if err != nil {
				return nil, fmt.Errorf("durable: capture %s: %w", si.snap.ID, err)
			}
			blob, err := change.MarshalOps(ops)
			if err != nil {
				return nil, fmt.Errorf("durable: capture %s: %w", si.snap.ID, err)
			}
			si.snap.Bias = blob
		}
		st.Instances = append(st.Instances, si.snap)
	}
	return st, nil
}

// Capture is Stage followed by Encode, for callers without a concurrent
// command load.
func Capture(eng *engine.Engine, seq int) (*SystemState, error) {
	return Stage(eng, seq).Encode()
}

// Restore rebuilds the engine state from a captured snapshot. The engine
// must be freshly created (no schemas, no instances).
func Restore(eng *engine.Engine, st *SystemState) error {
	if st.Format != FormatVersion {
		return fmt.Errorf("durable: restore: unsupported snapshot format %d", st.Format)
	}
	for _, u := range st.Users {
		// The snapshot's org model is a superset of any baseline supplied
		// via WithOrg (un-journaled users arrive through both paths, like
		// full replay re-receives them from the option): merge, don't
		// duplicate.
		if _, exists := eng.Org().User(u.ID); exists {
			continue
		}
		if err := eng.Org().AddUser(u); err != nil {
			return fmt.Errorf("durable: restore user: %w", err)
		}
	}
	for _, blob := range st.Schemas {
		var s model.Schema
		if err := json.Unmarshal(blob, &s); err != nil {
			return fmt.Errorf("durable: restore schema: %w", err)
		}
		if err := eng.Deploy(&s); err != nil {
			return fmt.Errorf("durable: restore: %w", err)
		}
	}
	for _, snap := range st.Instances {
		var bias []engine.BiasOp
		if len(snap.Bias) > 0 {
			ops, err := change.UnmarshalOps(snap.Bias)
			if err != nil {
				return fmt.Errorf("durable: restore %s: %w", snap.ID, err)
			}
			bias = make([]engine.BiasOp, len(ops))
			for i, op := range ops {
				bias[i] = op
			}
		}
		if err := eng.RestoreInstance(snap, bias); err != nil {
			return err
		}
	}
	eng.SetInstanceCounter(st.InstanceCounter)
	if st.Worklist != nil {
		if err := eng.Worklist().Import(st.Worklist); err != nil {
			return err
		}
	}
	return nil
}
