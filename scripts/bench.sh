#!/usr/bin/env sh
# bench.sh — run the perf-trajectory benchmark families (Fig. 1 compliance
# replay, Fig. 3 population migration, E8 engine throughput, journal
# recovery, group commit, sharded append/recovery, command submission
# sync/async/batch, remote submission over loopback HTTP sync/async,
# exception fail→sweep→retry round trip, mining scan
# over a multi-thousand-instance population) and emit a
# JSON snapshot at the repo root, so successive PRs can compare against
# the recorded baseline.
#
# Usage: scripts/bench.sh [output-file]
#
# The default output is BENCH_pr10.json (the current PR's snapshot). The
# delta table compares against $BENCH_BASELINE (default BENCH_pr9.json,
# the previous PR's snapshot) when that file exists and differs from the
# output.
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_pr10.json}"
baseline="${BENCH_BASELINE:-BENCH_pr9.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'Fig1|Fig3|EngineComplete|Recovery|Sharded|^BenchmarkSubmit|Exception|Mine' -benchmem . | tee "$raw"
# The remote loopback family is fsync-noise-dominated on this host (the
# sync-vs-pipelined gap is ~60µs against ~±50µs swings), so it gets a
# longer averaging window than the default 1s.
go test -run '^$' -bench 'Remote' -benchtime 3s -benchmem . | tee -a "$raw"
go test -run '^$' -bench 'GroupCommit' -benchmem ./internal/durable | tee -a "$raw"

{
	printf '{\n'
	printf '  "generated_by": "scripts/bench.sh",\n'
	printf '  "go": "%s",\n' "$(go version | awk '{print $3}')"
	printf '  "benchmarks": [\n'
	awk '/^Benchmark/ {
		name=$1; sub(/-[0-9]+$/, "", name)
		nsop=""; bop=""; allocs=""; extra=""
		for (i=2; i<NF; i++) {
			if ($(i+1) == "ns/op")     nsop=$i
			if ($(i+1) == "B/op")      bop=$i
			if ($(i+1) == "allocs/op") allocs=$i
			if ($(i+1) == "us/instance") extra=$i
		}
		line=sprintf("    {\"name\": \"%s\", \"iterations\": %s", name, $2)
		if (nsop != "")   line=line sprintf(", \"ns_per_op\": %s", nsop)
		if (bop != "")    line=line sprintf(", \"bytes_per_op\": %s", bop)
		if (allocs != "") line=line sprintf(", \"allocs_per_op\": %s", allocs)
		if (extra != "")  line=line sprintf(", \"us_per_instance\": %s", extra)
		line=line "}"
		if (seen) printf(",\n")
		printf("%s", line)
		seen=1
	}
	END { printf("\n") }' "$raw"
	printf '  ]\n'
	printf '}\n'
} >"$out"

echo "wrote $out"

# Baseline-vs-current delta table (skipped when re-recording the baseline).
if [ -f "$baseline" ] && [ "$out" != "$baseline" ]; then
	echo
	echo "delta vs $baseline:"
	awk '
	function field(line, key,    re, v) {
		re = "\"" key "\": [0-9.+-]+"
		if (match(line, re)) {
			v = substr(line, RSTART, RLENGTH)
			sub(/^.*: /, "", v)
			return v
		}
		return ""
	}
	/"name":/ {
		name = line = $0
		sub(/^.*"name": "/, "", name); sub(/".*$/, "", name)
		ns = field(line, "ns_per_op"); al = field(line, "allocs_per_op")
		if (FILENAME == base) { bns[name] = ns; bal[name] = al; order[n++] = name }
		else { cns[name] = ns; cal[name] = al; seen[name] = 1 }
	}
	END {
		printf "  %-45s %12s %12s %8s %9s %9s %8s\n", "benchmark", "base ns/op", "cur ns/op", "ns d%", "base al", "cur al", "al d%"
		for (i = 0; i < n; i++) {
			name = order[i]
			if (!seen[name]) continue
			dn = (bns[name] != "" && bns[name]+0 > 0) ? sprintf("%+.1f", 100*(cns[name]-bns[name])/bns[name]) : "-"
			da = (bal[name] != "" && bal[name]+0 > 0) ? sprintf("%+.1f", 100*(cal[name]-bal[name])/bal[name]) : "-"
			printf "  %-45s %12s %12s %8s %9s %9s %8s\n", name, bns[name], cns[name], dn, bal[name], cal[name], da
		}
	}' base="$baseline" "$baseline" "$out"
fi
