package model

import (
	"fmt"
	"time"
)

// Builder assembles block-structured schemas from fragments. Every
// composition method returns a Fragment (a single-entry single-exit
// region); Build wires the root fragment between a start and an end node.
//
// The builder collects the first error and makes all subsequent calls
// no-ops, so call sites can chain fluently and check Err (or the error
// returned by Build) once.
type Builder struct {
	s     *Schema
	err   error
	gwSeq int
}

// Fragment is a single-entry single-exit region under construction.
type Fragment struct {
	entry string
	exit  string
	valid bool
}

// Entry returns the entry node ID of the fragment.
func (f Fragment) Entry() string { return f.entry }

// Exit returns the exit node ID of the fragment.
func (f Fragment) Exit() string { return f.exit }

// NewBuilder creates a builder for version 1 of the named process type.
func NewBuilder(typeName string) *Builder {
	return NewVersionBuilder(typeName, 1)
}

// NewVersionBuilder creates a builder for an explicit schema version.
func NewVersionBuilder(typeName string, version int) *Builder {
	return &Builder{s: NewSchema(fmt.Sprintf("%s@v%d", typeName, version), typeName, version)}
}

// Err returns the first error encountered by the builder.
func (b *Builder) Err() error { return b.err }

func (b *Builder) fail(err error) Fragment {
	if b.err == nil {
		b.err = err
	}
	return Fragment{}
}

func (b *Builder) gateway(t NodeType, opts ...NodeOption) string {
	b.gwSeq++
	id := fmt.Sprintf("%s_%d", t, b.gwSeq)
	n := &Node{ID: id, Name: id, Type: t, Auto: true}
	for _, o := range opts {
		o(n)
	}
	if b.err == nil {
		b.err = b.s.AddNode(n)
	}
	return id
}

// NodeOption customizes a node created by the builder.
type NodeOption func(*Node)

// WithRole sets the staff assignment of an activity.
func WithRole(role string) NodeOption { return func(n *Node) { n.Role = role } }

// WithTemplate sets the activity template identifier.
func WithTemplate(t string) NodeOption { return func(n *Node) { n.Template = t } }

// WithAuto marks the node as automatically executed by the engine.
func WithAuto() NodeOption { return func(n *Node) { n.Auto = true } }

// WithDuration sets the nominal duration hint used by the simulator.
func WithDuration(d int) NodeOption { return func(n *Node) { n.Duration = d } }

// WithDecisionElement sets the data element an automatic XOR split or loop
// end consults.
func WithDecisionElement(elem string) NodeOption {
	return func(n *Node) { n.DecisionElement = elem }
}

// WithMaxIterations bounds an automatic loop.
func WithMaxIterations(n int) NodeOption {
	return func(node *Node) { node.MaxIterations = n }
}

// WithDeadline sets the activity's relative completion deadline, armed
// when the activity starts.
func WithDeadline(d time.Duration) NodeOption {
	return func(n *Node) { n.Deadline = int64(d) }
}

// WithEscalation names the role a timed-out activity's work item is
// re-offered to.
func WithEscalation(role string) NodeOption {
	return func(n *Node) { n.Escalation = role }
}

// Activity adds an activity node and returns it as a fragment. If no
// template option is given, the node ID doubles as its template.
func (b *Builder) Activity(id, name string, opts ...NodeOption) Fragment {
	if b.err != nil {
		return Fragment{}
	}
	n := &Node{ID: id, Name: name, Type: NodeActivity, Template: id}
	for _, o := range opts {
		o(n)
	}
	if err := b.s.AddNode(n); err != nil {
		return b.fail(err)
	}
	return Fragment{entry: id, exit: id, valid: true}
}

// Empty adds a silent automatic activity, useful as an empty branch of a
// conditional block.
func (b *Builder) Empty() Fragment {
	if b.err != nil {
		return Fragment{}
	}
	b.gwSeq++
	id := fmt.Sprintf("nop_%d", b.gwSeq)
	if err := b.s.AddNode(&Node{ID: id, Name: id, Type: NodeActivity, Auto: true, Template: "nop"}); err != nil {
		return b.fail(err)
	}
	return Fragment{entry: id, exit: id, valid: true}
}

// Seq composes fragments sequentially with control edges.
func (b *Builder) Seq(frags ...Fragment) Fragment {
	if b.err != nil {
		return Fragment{}
	}
	if len(frags) == 0 {
		return b.fail(fmt.Errorf("model: builder: empty sequence"))
	}
	for i, f := range frags {
		if !f.valid {
			return b.fail(fmt.Errorf("model: builder: invalid fragment %d in sequence", i))
		}
		if i == 0 {
			continue
		}
		if err := b.s.AddEdge(&Edge{From: frags[i-1].exit, To: f.entry, Type: EdgeControl}); err != nil {
			return b.fail(err)
		}
	}
	return Fragment{entry: frags[0].entry, exit: frags[len(frags)-1].exit, valid: true}
}

// Parallel composes fragments as branches of an AND block.
func (b *Builder) Parallel(branches ...Fragment) Fragment {
	if b.err != nil {
		return Fragment{}
	}
	if len(branches) < 2 {
		return b.fail(fmt.Errorf("model: builder: parallel block needs >=2 branches, got %d", len(branches)))
	}
	split := b.gateway(NodeANDSplit)
	join := b.gateway(NodeANDJoin)
	for i, br := range branches {
		if !br.valid {
			return b.fail(fmt.Errorf("model: builder: invalid branch %d in parallel block", i))
		}
		if err := b.s.AddEdge(&Edge{From: split, To: br.entry, Type: EdgeControl}); err != nil {
			return b.fail(err)
		}
		if err := b.s.AddEdge(&Edge{From: br.exit, To: join, Type: EdgeControl}); err != nil {
			return b.fail(err)
		}
	}
	return Fragment{entry: split, exit: join, valid: true}
}

// Choice composes fragments as branches of an XOR block. Branch i gets
// selection code i. If decisionElem is non-empty the split is automatic
// and consults the element's integer value; otherwise a user (or the test
// harness) supplies the decision when completing the split.
func (b *Builder) Choice(decisionElem string, branches ...Fragment) Fragment {
	if b.err != nil {
		return Fragment{}
	}
	if len(branches) < 2 {
		return b.fail(fmt.Errorf("model: builder: choice block needs >=2 branches, got %d", len(branches)))
	}
	opts := []NodeOption{}
	if decisionElem != "" {
		opts = append(opts, WithDecisionElement(decisionElem))
	}
	split := b.gateway(NodeXORSplit, opts...)
	join := b.gateway(NodeXORJoin)
	for i, br := range branches {
		if !br.valid {
			return b.fail(fmt.Errorf("model: builder: invalid branch %d in choice block", i))
		}
		if err := b.s.AddEdge(&Edge{From: split, To: br.entry, Type: EdgeControl, Code: i}); err != nil {
			return b.fail(err)
		}
		if err := b.s.AddEdge(&Edge{From: br.exit, To: join, Type: EdgeControl}); err != nil {
			return b.fail(err)
		}
	}
	return Fragment{entry: split, exit: join, valid: true}
}

// Loop wraps a fragment into a do-while loop block. If condElem is
// non-empty the loop end is automatic and repeats while the element's
// boolean value is true (bounded by maxIter); otherwise the decision is
// supplied when completing the loop end node.
func (b *Builder) Loop(body Fragment, condElem string, maxIter int) Fragment {
	if b.err != nil {
		return Fragment{}
	}
	if !body.valid {
		return b.fail(fmt.Errorf("model: builder: invalid loop body"))
	}
	start := b.gateway(NodeLoopStart)
	opts := []NodeOption{WithMaxIterations(maxIter)}
	if condElem != "" {
		opts = append(opts, WithDecisionElement(condElem))
	}
	end := b.gateway(NodeLoopEnd, opts...)
	if err := b.s.AddEdge(&Edge{From: start, To: body.entry, Type: EdgeControl}); err != nil {
		return b.fail(err)
	}
	if err := b.s.AddEdge(&Edge{From: body.exit, To: end, Type: EdgeControl}); err != nil {
		return b.fail(err)
	}
	if err := b.s.AddEdge(&Edge{From: end, To: start, Type: EdgeLoop}); err != nil {
		return b.fail(err)
	}
	return Fragment{entry: start, exit: end, valid: true}
}

// Sync adds a sync edge between two already-added nodes. Sync edges order
// activities in different branches of a parallel block.
func (b *Builder) Sync(from, to string) {
	if b.err != nil {
		return
	}
	if err := b.s.AddEdge(&Edge{From: from, To: to, Type: EdgeSync}); err != nil {
		b.err = err
	}
}

// DataElement declares a typed data element.
func (b *Builder) DataElement(id string, t DataType) {
	if b.err != nil {
		return
	}
	if err := b.s.AddDataElement(&DataElement{ID: id, Name: id, Type: t}); err != nil {
		b.err = err
	}
}

// Read connects an activity input parameter to a data element.
func (b *Builder) Read(act, elem, param string, mandatory bool) {
	if b.err != nil {
		return
	}
	de := &DataEdge{Activity: act, Element: elem, Access: Read, Parameter: param, Mandatory: mandatory}
	if err := b.s.AddDataEdge(de); err != nil {
		b.err = err
	}
}

// Write connects an activity output parameter to a data element.
func (b *Builder) Write(act, elem, param string) {
	if b.err != nil {
		return
	}
	de := &DataEdge{Activity: act, Element: elem, Access: Write, Parameter: param}
	if err := b.s.AddDataEdge(de); err != nil {
		b.err = err
	}
}

// Build wires the root fragment between the start and end node and returns
// the completed schema. The schema is structurally assembled but not yet
// verified; callers run internal/verify before deploying it.
func (b *Builder) Build(root Fragment) (*Schema, error) {
	if b.err != nil {
		return nil, b.err
	}
	if !root.valid {
		return nil, fmt.Errorf("model: builder: invalid root fragment")
	}
	startID, endID := "start", "end"
	if _, taken := b.s.Node(startID); taken {
		startID = "__start"
	}
	if _, taken := b.s.Node(endID); taken {
		endID = "__end"
	}
	if err := b.s.AddNode(&Node{ID: startID, Name: "start", Type: NodeStart, Auto: true}); err != nil {
		return nil, err
	}
	if err := b.s.AddNode(&Node{ID: endID, Name: "end", Type: NodeEnd, Auto: true}); err != nil {
		return nil, err
	}
	if err := b.s.AddEdge(&Edge{From: startID, To: root.entry, Type: EdgeControl}); err != nil {
		return nil, err
	}
	if err := b.s.AddEdge(&Edge{From: root.exit, To: endID, Type: EdgeControl}); err != nil {
		return nil, err
	}
	return b.s, nil
}
