package adept2_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"adept2"
	"adept2/internal/sim"
	"adept2/internal/vfs"
)

// BenchmarkExceptionFailRetrySweep measures one full exception round
// trip on the journaled path: Start → Fail (policy decides retry, the
// backoff rides the fail record) → deadline sweep lifting the backoff →
// Complete. Everything runs over an in-memory filesystem, so the number
// is the cost of the exception machinery itself, not the disk.
func BenchmarkExceptionFailRetrySweep(b *testing.B) {
	ctx := context.Background()
	clock := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	policy := adept2.PolicyFunc(func(adept2.Exception) adept2.Reaction {
		return adept2.Reaction{Action: adept2.ActionRetry, Backoff: time.Second}
	})
	sys, err := adept2.Open("wal",
		adept2.WithOrg(sim.Org()),
		adept2.WithVFS(vfs.NewMemFS()),
		adept2.WithClock(func() time.Time { return clock }),
		adept2.WithExceptionPolicy(policy),
		adept2.WithCheckpointing(adept2.CheckpointConfig{Every: -1}))
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()

	bb := adept2.NewBuilder("bench_exc")
	work := bb.Activity("work", "Work", adept2.WithRole("clerk"),
		adept2.WithDeadline(time.Hour), adept2.WithEscalation("sales"))
	schema, err := bb.Build(bb.Seq(work))
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.Deploy(schema); err != nil {
		b.Fatal(err)
	}
	inst, err := sys.CreateInstance("bench_exc")
	if err != nil {
		b.Fatal(err)
	}
	id := inst.ID()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sys.Start(id, "work", "ann"); err != nil {
			b.Fatal(err)
		}
		if err := sys.Fail(ctx, id, "work", "ann", fmt.Sprintf("bench failure %d", i)); err != nil {
			b.Fatal(err)
		}
		clock = clock.Add(2 * time.Second)
		rep, err := sys.SweepDeadlines(ctx, clock)
		if err != nil || rep.Retries != 1 {
			b.Fatalf("sweep: %v, retries %d", err, rep.Retries)
		}
	}
}
