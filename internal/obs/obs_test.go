package obs

import (
	"bufio"
	"bytes"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestNilSafety exercises every recording method through nil receivers —
// the Disabled contract: no panic, no effect, zero reads.
func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Load() != 0 {
		t.Fatal("nil counter read non-zero")
	}
	var g *Gauge
	g.Set(7)
	g.Add(3)
	if g.Load() != 0 {
		t.Fatal("nil gauge read non-zero")
	}
	var h *Histogram
	h.Observe(42)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram counted")
	}
	if s := h.Snapshot(); s.Count != 0 || len(s.Buckets) != 0 {
		t.Fatal("nil histogram snapshot not empty")
	}
	var r *TraceRing
	if r.Sample() {
		t.Fatal("nil ring sampled")
	}
	r.Publish(Span{Op: "x"})
	if r.Snapshot() != nil {
		t.Fatal("nil ring snapshot not nil")
	}
	var m *CommitterMetrics
	m.ObserveFsync(1)
	m.ObserveBatch(1)
	m.RetryInc()
	m.WedgeInc()
	m.HealInc()

	// Disabled is the nil *Set; its methods must be no-ops too.
	Disabled.SubmitOK(0, 100)
	Disabled.SubmitBatched(0)
	Disabled.SubmitErr(0, 1)
	Disabled.ShardAppend(0, 3)
	if Disabled.OpOK(0) != 0 || Disabled.ShardAppends(0) != 0 {
		t.Fatal("Disabled read non-zero")
	}
	snap := Disabled.Snapshot()
	if snap == nil || len(snap.Ops) != 0 {
		t.Fatal("Disabled snapshot not empty")
	}
}

// TestDisabledAllocationFree pins the acceptance criterion: the
// metrics-off recording path allocates nothing.
func TestDisabledAllocationFree(t *testing.T) {
	var m *CommitterMetrics
	var r *TraceRing
	allocs := testing.AllocsPerRun(200, func() {
		Disabled.SubmitOK(3, 1234)
		Disabled.SubmitErr(3, 2)
		Disabled.SubmitBatched(3)
		Disabled.ShardAppend(1, 2)
		r.Sample()
		m.ObserveFsync(99)
		m.ObserveBatch(4)
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocated %.1f per run, want 0", allocs)
	}
}

// TestHistogramBuckets verifies the power-of-two bucketing: bucket
// bits.Len64(v>>shift), clamped into the final slot, sum/count exact.
func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(4, 0)
	for _, v := range []int64{0, 1, 2, 3, 4, 1 << 40, -5} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	// -5 clamps to 0; sum = 0+1+2+3+4+2^40+0.
	if want := int64(10 + 1<<40); h.Sum() != want {
		t.Fatalf("sum = %d, want %d", h.Sum(), want)
	}
	s := h.Snapshot()
	// Buckets: v=0,-5 → bucket 0; v=1 → 1; v=2,3 → 2; v=4, 2^40 (clamped) → 3.
	want := []int64{2, 1, 2, 2}
	if len(s.Buckets) != 4 {
		t.Fatalf("buckets = %v, want 4 entries", s.Buckets)
	}
	for i, n := range want {
		if s.Buckets[i] != n {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Buckets[i], n, s.Buckets)
		}
	}
	// Bounds: 1, 2, 4 then -1 for the unbounded final bucket.
	if s.Bounds[0] != 1 || s.Bounds[1] != 2 || s.Bounds[2] != 4 || s.Bounds[3] != -1 {
		t.Fatalf("bounds = %v", s.Bounds)
	}
	var total int64
	for _, n := range s.Buckets {
		total += n
	}
	if total != s.Count {
		t.Fatalf("bucket total %d != count %d", total, s.Count)
	}
}

// TestHistogramShift checks the unit scaling: shift 10 buckets by ~1µs.
func TestHistogramShift(t *testing.T) {
	h := NewHistogram(28, 10)
	h.Observe(1023) // < 2^10 → bucket 0
	h.Observe(1024) // 1024>>10 = 1 → bucket 1
	h.Observe(4096) // 4 → bits 3 → bucket 3
	s := h.Snapshot()
	if s.Buckets[0] != 1 || s.Buckets[1] != 1 || s.Buckets[3] != 1 {
		t.Fatalf("buckets = %v", s.Buckets)
	}
	if s.Bounds[0] != 1024 || s.Bounds[1] != 2048 {
		t.Fatalf("bounds = %v", s.Bounds)
	}
	// Trailing empties trimmed: nothing past bucket 3.
	if len(s.Buckets) != 4 {
		t.Fatalf("snapshot not trimmed: %v", s.Buckets)
	}
}

// TestRingSampling checks the 1/N sampling cadence.
func TestRingSampling(t *testing.T) {
	r := NewTraceRing(8, 4)
	hits := 0
	for i := 0; i < 100; i++ {
		if r.Sample() {
			hits++
		}
	}
	if hits != 25 {
		t.Fatalf("sampled %d of 100 at 1/4, want 25", hits)
	}
	all := NewTraceRing(2, 1)
	for i := 0; i < 10; i++ {
		if !all.Sample() {
			t.Fatal("1/1 ring skipped a sample")
		}
	}
}

// TestRingPublish checks wrap-around and snapshot capping.
func TestRingPublish(t *testing.T) {
	r := NewTraceRing(4, 1)
	for i := 0; i < 6; i++ {
		r.Publish(Span{Op: "op", Seq: i + 1})
	}
	spans := r.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("snapshot len = %d, want 4 (ring capacity)", len(spans))
	}
	// Slots 0,1 were overwritten by seqs 5,6; slots 2,3 hold 3,4.
	seqs := map[int]bool{}
	for _, sp := range spans {
		seqs[sp.Seq] = true
	}
	for _, want := range []int{3, 4, 5, 6} {
		if !seqs[want] {
			t.Fatalf("seq %d missing from %v", want, spans)
		}
	}
}

// TestRingConcurrent hammers Publish and Snapshot together; -race proves
// the per-slot mutex discipline, the asserts prove spans never tear.
func TestRingConcurrent(t *testing.T) {
	r := NewTraceRing(8, 1)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				// Op and Seq move together; a torn span would mismatch.
				r.Publish(Span{Op: strconv.Itoa(w), Seq: w, SubmitNanos: int64(i)})
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			for _, sp := range r.Snapshot() {
				if sp.Op != strconv.Itoa(sp.Seq) {
					t.Errorf("torn span: op %q seq %d", sp.Op, sp.Seq)
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
}

// TestSetSnapshot checks the op-family assembly: never-submitted ops are
// skipped, outcome codes split, batched subsets carried.
func TestSetSnapshot(t *testing.T) {
	ops := []string{"alpha", "beta"}
	codes := []string{"ok", "invalid", "conflict"}
	s := New(ops, codes, 2, Options{RingSlots: 4, SampleEvery: 1})
	s.SubmitOK(0, 1000)
	s.SubmitOK(0, 2000)
	s.SubmitErr(0, 2) // conflict
	s.SubmitBatched(0)
	s.ShardAppend(0, 3)
	s.ShardAppend(1, 2)
	snap := s.Snapshot()
	if len(snap.Ops) != 1 {
		t.Fatalf("ops = %v, want only alpha", snap.Ops)
	}
	a := snap.Ops["alpha"]
	if a.OK != 3 || a.Batched != 1 {
		t.Fatalf("alpha ok=%d batched=%d", a.OK, a.Batched)
	}
	if a.Errors["conflict"] != 1 || len(a.Errors) != 1 {
		t.Fatalf("alpha errors = %v", a.Errors)
	}
	if a.OK-a.Batched != a.Latency.Count {
		t.Fatalf("latency count %d != ok-batched %d", a.Latency.Count, a.OK-a.Batched)
	}
	if len(snap.Shards) != 2 || snap.Shards[0].Appends != 3 || snap.Shards[1].Appends != 2 {
		t.Fatalf("shards = %+v", snap.Shards)
	}
}

// TestPrometheusRendering renders a populated snapshot and validates the
// exposition format: headers for every family, cumulative le buckets
// whose +Inf sample equals _count, and escaped label values.
func TestPrometheusRendering(t *testing.T) {
	ops := []string{`we"ird\op` + "\n", "plain"}
	codes := []string{"ok", "invalid"}
	s := New(ops, codes, 1, Options{RingSlots: 4, SampleEvery: 1})
	s.SubmitOK(0, 1500)
	s.SubmitOK(1, 3000)
	s.SubmitOK(1, 4_000_000)
	s.SubmitErr(1, 1)
	s.ShardAppend(0, 3)
	s.Committer.ObserveFsync(250_000)
	s.Committer.ObserveBatch(12)
	snap := s.Snapshot()

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, snap); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	// Escaping: the weird op renders with \" \\ \n escapes.
	if !strings.Contains(text, `op="we\"ird\\op\n"`) {
		t.Fatalf("label not escaped:\n%s", text)
	}

	// Parse every line; collect TYPE-declared families and samples.
	families := map[string]string{}
	type sample struct {
		labels string
		value  float64
	}
	samples := map[string][]sample{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) < 4 || (f[1] != "HELP" && f[1] != "TYPE") {
				t.Fatalf("bad comment line: %q", line)
			}
			if f[1] == "TYPE" {
				families[f[2]] = f[3]
			}
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("bad sample line: %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		name, labels := line[:i], ""
		if j := strings.IndexByte(name, '{'); j >= 0 {
			labels = name[j:]
			name = name[:j]
		}
		samples[name] = append(samples[name], sample{labels, v})
	}
	for _, fam := range []string{
		"adept2_submit_total", "adept2_submit_latency_seconds",
		"adept2_shard_appends_total", "adept2_committer_fsync_seconds",
		"adept2_checkpoint_total", "adept2_exception_failures_total",
		"adept2_sweep_lag_seconds", "adept2_instances", "adept2_wedged",
	} {
		if _, ok := families[fam]; !ok {
			t.Fatalf("family %s missing", fam)
		}
	}

	// Histogram contract per labelset: buckets cumulative, +Inf == count.
	for fam, kind := range families {
		if kind != "histogram" {
			continue
		}
		counts := map[string]float64{}
		for _, sm := range samples[fam+"_count"] {
			counts[sm.labels] = sm.value
		}
		byLabels := map[string][]sample{}
		for _, sm := range samples[fam+"_bucket"] {
			base, le := splitLe(t, sm.labels)
			byLabels[base] = append(byLabels[base], sample{le, sm.value})
		}
		for base, buckets := range byLabels {
			prev := -1.0
			last := buckets[len(buckets)-1]
			if last.labels != "+Inf" {
				t.Fatalf("%s%s: final bucket le=%q, want +Inf", fam, base, last.labels)
			}
			for _, b := range buckets {
				if b.value < prev {
					t.Fatalf("%s%s: buckets not cumulative: %v", fam, base, buckets)
				}
				prev = b.value
			}
			key := base
			if key == "{}" {
				key = ""
			}
			if last.value != counts[key] {
				t.Fatalf("%s%s: +Inf %v != count %v", fam, base, last.value, counts[key])
			}
		}
	}
}

// splitLe strips the le label out of a bucket labelset, returning the
// remaining labels (normalized) and the le value.
func splitLe(t *testing.T, labels string) (string, string) {
	t.Helper()
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	var rest []string
	le := ""
	for _, part := range strings.Split(inner, ",") {
		if strings.HasPrefix(part, `le="`) {
			le = strings.TrimSuffix(strings.TrimPrefix(part, `le="`), `"`)
		} else if part != "" {
			rest = append(rest, part)
		}
	}
	if le == "" {
		t.Fatalf("bucket labels %q missing le", labels)
	}
	return "{" + strings.Join(rest, ",") + "}", le
}
