// Package graph provides the graph algorithms used across ADEPT2:
// topological ordering, reachability, and block-structure analysis
// (matching split/join pairs, branch membership, proper nesting). All
// algorithms operate on model.SchemaView so they work identically on plain
// schemas and on biased-instance overlays.
package graph

import (
	"fmt"
	"sort"

	"adept2/internal/model"
)

// EdgeFilter selects the edges an algorithm traverses.
type EdgeFilter func(*model.Edge) bool

// Control selects control edges only. Loop edges are excluded, so the
// resulting graph of a correct schema is acyclic.
func Control(e *model.Edge) bool { return e.Type == model.EdgeControl }

// ControlAndSync selects control and sync edges; this is the graph the
// deadlock check must find acyclic (sync edges may not induce cycles —
// the deadlock-causing-cycle criterion of the paper).
func ControlAndSync(e *model.Edge) bool {
	return e.Type == model.EdgeControl || e.Type == model.EdgeSync
}

// All selects every edge including loop edges.
func All(*model.Edge) bool { return true }

// TopoOrder returns a topological order of all nodes over the filtered
// edges. If the filtered graph contains a cycle, it returns an error
// naming the nodes on the residual cycle.
func TopoOrder(v model.SchemaView, filter EdgeFilter) ([]string, error) {
	ids := v.NodeIDs()
	indeg := make(map[string]int, len(ids))
	for _, id := range ids {
		indeg[id] = 0
	}
	for _, e := range v.Edges() {
		if filter(e) {
			indeg[e.To]++
		}
	}
	// Deterministic queue: process ready nodes in schema order.
	queue := make([]string, 0, len(ids))
	for _, id := range ids {
		if indeg[id] == 0 {
			queue = append(queue, id)
		}
	}
	order := make([]string, 0, len(ids))
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, e := range v.OutEdges(id) {
			if !filter(e) {
				continue
			}
			indeg[e.To]--
			if indeg[e.To] == 0 {
				queue = append(queue, e.To)
			}
		}
	}
	if len(order) != len(ids) {
		var cyc []string
		for _, id := range ids {
			if indeg[id] > 0 {
				cyc = append(cyc, id)
			}
		}
		sort.Strings(cyc)
		return nil, fmt.Errorf("graph: cycle involving nodes %v", cyc)
	}
	return order, nil
}

// Reachable returns the set of nodes reachable from the given node over
// the filtered edges. With forward=false it follows edges backwards.
// The start node itself is included.
func Reachable(v model.SchemaView, from string, filter EdgeFilter, forward bool) map[string]bool {
	seen := map[string]bool{from: true}
	stack := []string{from}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		var edges []*model.Edge
		if forward {
			edges = v.OutEdges(id)
		} else {
			edges = v.InEdges(id)
		}
		for _, e := range edges {
			if !filter(e) {
				continue
			}
			next := e.To
			if !forward {
				next = e.From
			}
			if !seen[next] {
				seen[next] = true
				stack = append(stack, next)
			}
		}
	}
	return seen
}

// HasPath reports whether a path from one node to another exists over the
// filtered edges. A node trivially has a path to itself.
func HasPath(v model.SchemaView, from, to string, filter EdgeFilter) bool {
	if from == to {
		return true
	}
	seen := map[string]bool{from: true}
	stack := []string{from}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range v.OutEdges(id) {
			if !filter(e) {
				continue
			}
			if e.To == to {
				return true
			}
			if !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	return false
}
