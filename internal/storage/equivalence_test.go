package storage_test

import (
	"fmt"
	"math/rand"
	"testing"

	"adept2/internal/change"
	"adept2/internal/engine"
	"adept2/internal/sim"
	"adept2/internal/storage"
)

// TestStrategiesAreBehaviorallyEquivalent drives identically seeded biased
// instances to completion under all three Fig. 2 representations: the
// resulting execution histories must be event-for-event identical. The
// representation is an implementation detail — that is the whole point of
// the SchemaView seam.
func TestStrategiesAreBehaviorallyEquivalent(t *testing.T) {
	trials := 15
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		schemaRng := rand.New(rand.NewSource(int64(trial) + 500))
		name := fmt.Sprintf("eq%d", trial)
		schema := sim.RandomSchema(schemaRng, name, sim.DefaultSchemaOpts())

		// Find an applicable random ad-hoc change for this trial (same
		// proposal sequence for every strategy).
		type runResult struct {
			events []string
			biased bool
		}
		var results []runResult
		for _, strat := range storage.Strategies() {
			e := engine.New(sim.Org())
			e.SetStorageStrategy(strat)
			if err := e.Deploy(schema.Clone()); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			inst, err := e.CreateInstance(name, 0)
			if err != nil {
				t.Fatal(err)
			}
			runRng := rand.New(rand.NewSource(int64(trial)*31 + 7))
			driver := sim.NewDriver(runRng, e)
			if err := driver.Advance(inst, 5); err != nil {
				t.Fatalf("trial %d/%s: advance: %v", trial, strat, err)
			}
			// Deterministic proposal sequence; apply the first accepted
			// change.
			opRng := rand.New(rand.NewSource(int64(trial)*17 + 3))
			biased := false
			for attempt := 0; attempt < 10 && !biased; attempt++ {
				ops := sim.RandomAdHocOps(opRng, inst.View(), attempt)
				if change.ApplyAdHoc(inst, ops...) == nil {
					biased = true
				}
			}
			if err := driver.RunToCompletion(inst); err != nil {
				t.Fatalf("trial %d/%s: completion: %v", trial, strat, err)
			}
			var events []string
			for _, ev := range inst.HistoryEvents() {
				events = append(events, ev.String())
			}
			results = append(results, runResult{events: events, biased: biased})
		}
		for i := 1; i < len(results); i++ {
			if results[i].biased != results[0].biased {
				t.Fatalf("trial %d: bias acceptance differs between strategies", trial)
			}
			if len(results[i].events) != len(results[0].events) {
				t.Fatalf("trial %d: history lengths differ: %d vs %d",
					trial, len(results[0].events), len(results[i].events))
			}
			for k := range results[i].events {
				if results[i].events[k] != results[0].events[k] {
					t.Fatalf("trial %d: event %d differs: %q vs %q",
						trial, k, results[0].events[k], results[i].events[k])
				}
			}
		}
	}
}
