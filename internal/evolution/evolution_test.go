package evolution_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"adept2/internal/change"
	"adept2/internal/engine"
	"adept2/internal/evolution"
	"adept2/internal/model"
	"adept2/internal/sim"
	"adept2/internal/state"
	"adept2/internal/storage"
)

func newEngine(t *testing.T) *engine.Engine {
	t.Helper()
	e := engine.New(sim.Org())
	if err := e.Deploy(sim.OnlineOrder()); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	return e
}

// setupFig1 creates the three instances of the paper's Fig. 1/Fig. 3
// scenario: I1 (compliant), I2 (ad-hoc modified, structural conflict), and
// I3 (state conflict).
func setupFig1(t *testing.T, e *engine.Engine) (i1, i2, i3 *engine.Instance) {
	t.Helper()
	var err error
	i1, err = e.CreateInstance("online_order", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.AdvanceOnlineOrderToI1(e, i1); err != nil {
		t.Fatal(err)
	}

	i2, err = e.CreateInstance("online_order", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.CompleteActivity(i2.ID(), "get_order", "ann", map[string]any{"out": "o2"}); err != nil {
		t.Fatal(err)
	}
	if err := change.ApplyAdHoc(i2, sim.OnlineOrderBiasI2()...); err != nil {
		t.Fatalf("bias I2: %v", err)
	}

	i3, err = e.CreateInstance("online_order", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.AdvanceOnlineOrderToI3(e, i3); err != nil {
		t.Fatal(err)
	}
	return i1, i2, i3
}

func resultOf(r *evolution.Report, inst string) evolution.InstanceResult {
	for _, res := range r.Results {
		if res.Instance == inst {
			return res
		}
	}
	return evolution.InstanceResult{Outcome: evolution.Failed, Detail: "not in report"}
}

// TestFig3MigrationScenario reproduces the demo of the paper (Fig. 3): the
// type change migrates I1 to version 2, leaves I2 on version 1 with a
// structural conflict, and leaves I3 on version 1 with a state conflict.
func TestFig3MigrationScenario(t *testing.T) {
	for _, mode := range []evolution.CheckMode{evolution.FastCheck, evolution.ReplayCheck} {
		t.Run(mode.String(), func(t *testing.T) {
			e := newEngine(t)
			i1, i2, i3 := setupFig1(t, e)
			mgr := evolution.NewManager(e)
			report, err := mgr.Evolve("online_order", sim.OnlineOrderTypeChange(), evolution.Options{Mode: mode})
			if err != nil {
				t.Fatalf("evolve: %v", err)
			}
			if report.FromVersion != 1 || report.ToVersion != 2 || report.Total() != 3 {
				t.Fatalf("report metadata: %+v", report)
			}
			if got := resultOf(report, i1.ID()); got.Outcome != evolution.Migrated {
				t.Fatalf("I1 = %s (%s), want migrated", got.Outcome, got.Detail)
			}
			if got := resultOf(report, i2.ID()); got.Outcome != evolution.StructuralConflict {
				t.Fatalf("I2 = %s (%s), want structural conflict", got.Outcome, got.Detail)
			} else if !strings.Contains(got.Detail, "deadlock") {
				t.Fatalf("I2 detail should mention the deadlock cycle: %s", got.Detail)
			}
			if got := resultOf(report, i3.ID()); got.Outcome != evolution.StateConflict {
				t.Fatalf("I3 = %s (%s), want state conflict", got.Outcome, got.Detail)
			}

			// Versions after migration (Fig. 3): I1 on V2, I2/I3 on V1.
			if i1.Version() != 2 || i2.Version() != 1 || i3.Version() != 1 {
				t.Fatalf("versions: I1=%d I2=%d I3=%d", i1.Version(), i2.Version(), i3.Version())
			}
			if i1.Migrations() != 1 {
				t.Fatal("I1 migration count")
			}

			// I1's adapted state matches Fig. 1: send_questions activated,
			// confirm_order and pack_goods waiting.
			if got := i1.NodeState("send_questions"); got != state.Activated {
				t.Fatalf("send_questions = %s", got)
			}
			if got := i1.NodeState("confirm_order"); got != state.NotActivated {
				t.Fatalf("confirm_order = %s", got)
			}
			if got := i1.NodeState("pack_goods"); got != state.NotActivated {
				t.Fatalf("pack_goods = %s", got)
			}

			// All three instances still run to completion on their
			// respective versions.
			finishI1(t, e, i1)
			finishI2(t, e, i2)
			if err := e.CompleteActivity(i3.ID(), "confirm_order", "ann", nil); err != nil {
				t.Fatal(err)
			}
			if err := e.CompleteActivity(i3.ID(), "deliver_goods", "bob", nil); err != nil {
				t.Fatal(err)
			}
			if !i1.Done() || !i2.Done() || !i3.Done() {
				t.Fatal("all instances should complete")
			}
		})
	}
}

func finishI1(t *testing.T, e *engine.Engine, i1 *engine.Instance) {
	t.Helper()
	for _, step := range []struct {
		node, user string
	}{
		{"send_questions", "ann"}, // sales
		{"confirm_order", "ann"},
		{"pack_goods", "bob"},
		{"deliver_goods", "bob"},
	} {
		if err := e.CompleteActivity(i1.ID(), step.node, step.user, nil); err != nil {
			t.Fatalf("finish I1 at %s: %v", step.node, err)
		}
	}
}

func finishI2(t *testing.T, e *engine.Engine, i2 *engine.Instance) {
	t.Helper()
	for _, step := range []struct {
		node, user string
	}{
		{"collect_data", "ann"},
		{"send_brochure", "ann"},
		{"confirm_order", "ann"},
		{"compose_order", "bob"},
		{"pack_goods", "bob"},
		{"deliver_goods", "bob"},
	} {
		if err := e.CompleteActivity(i2.ID(), step.node, step.user, nil); err != nil {
			t.Fatalf("finish I2 at %s: %v", step.node, err)
		}
	}
}

func TestEvolveRejectsBrokenTypeChange(t *testing.T) {
	e := newEngine(t)
	mgr := evolution.NewManager(e)
	// Deleting the order writer breaks the data flow of every reader.
	_, err := mgr.Evolve("online_order", []change.Operation{&change.DeleteActivity{ID: "get_order"}}, evolution.Options{})
	if err == nil {
		t.Fatal("type change breaking verification must be rejected")
	}
	if _, err := mgr.Evolve("nope", nil, evolution.Options{}); err == nil {
		t.Fatal("unknown type must fail")
	}
	// Nothing was deployed.
	if e.LatestVersion("online_order") != 1 {
		t.Fatal("failed evolution must not deploy")
	}
}

func TestMigrationOfFinishedAndBiasedCompliantInstances(t *testing.T) {
	e := newEngine(t)
	// A finished instance.
	done, err := e.CreateInstance("online_order", 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	driver := sim.NewDriver(rng, e)
	if err := driver.RunToCompletion(done); err != nil {
		t.Fatal(err)
	}
	// A biased instance whose bias is disjoint from ΔT: sync edge
	// collect_data ~> compose_order (no cycle with ΔT).
	biased, err := e.CreateInstance("online_order", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := change.ApplyAdHoc(biased, &change.InsertSyncEdge{From: "collect_data", To: "compose_order"}); err != nil {
		t.Fatal(err)
	}

	mgr := evolution.NewManager(e)
	report, err := mgr.Evolve("online_order", sim.OnlineOrderTypeChange(), evolution.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := resultOf(report, done.ID()); got.Outcome != evolution.AlreadyFinished {
		t.Fatalf("finished instance = %s", got.Outcome)
	}
	if got := resultOf(report, biased.ID()); got.Outcome != evolution.Migrated {
		t.Fatalf("disjoint-bias instance = %s (%s)", got.Outcome, got.Detail)
	}
	if biased.Version() != 2 || !biased.Biased() {
		t.Fatal("bias must survive migration to the new version")
	}
	// The rebased view contains both ΔT and the bias.
	v := biased.View()
	if _, ok := v.Node("send_questions"); !ok {
		t.Fatal("ΔT missing after migration")
	}
	if !v.HasEdge(model.EdgeKey{From: "collect_data", To: "compose_order", Type: model.EdgeSync}) {
		t.Fatal("bias missing after migration")
	}
	// And the instance still completes.
	if err := driver.RunToCompletion(biased); err != nil {
		t.Fatalf("biased migrated instance stuck: %v", err)
	}
}

func TestSemanticConflictDetection(t *testing.T) {
	e := newEngine(t)
	inst, err := e.CreateInstance("online_order", 0)
	if err != nil {
		t.Fatal(err)
	}
	// The user already inserted send_questions ad hoc (same template as
	// ΔT, different position).
	adHoc := &change.SerialInsert{
		Node: &model.Node{ID: "sq_adhoc", Name: "Send Questions", Type: model.NodeActivity, Role: "sales", Template: "send_questions"},
		Pred: "collect_data",
		Succ: "confirm_order",
	}
	if err := change.ApplyAdHoc(inst, adHoc); err != nil {
		t.Fatal(err)
	}
	mgr := evolution.NewManager(e)
	report, err := mgr.Evolve("online_order", sim.OnlineOrderTypeChange(), evolution.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := resultOf(report, inst.ID()); got.Outcome != evolution.SemanticConflict {
		t.Fatalf("expected semantic conflict, got %s (%s)", got.Outcome, got.Detail)
	}
	if inst.Version() != 1 {
		t.Fatal("semantic conflict must keep the instance on V1")
	}
}

func TestAdaptModesAgree(t *testing.T) {
	for _, adapt := range []evolution.AdaptMode{evolution.AdaptIncremental, evolution.AdaptReplay} {
		t.Run(adapt.String(), func(t *testing.T) {
			e := newEngine(t)
			inst, err := e.CreateInstance("online_order", 0)
			if err != nil {
				t.Fatal(err)
			}
			if err := sim.AdvanceOnlineOrderToI1(e, inst); err != nil {
				t.Fatal(err)
			}
			mgr := evolution.NewManager(e)
			report, err := mgr.Evolve("online_order", sim.OnlineOrderTypeChange(), evolution.Options{Adapt: adapt})
			if err != nil {
				t.Fatal(err)
			}
			if got := resultOf(report, inst.ID()); got.Outcome != evolution.Migrated {
				t.Fatalf("outcome = %s (%s)", got.Outcome, got.Detail)
			}
			if inst.NodeState("send_questions") != state.Activated ||
				inst.NodeState("confirm_order") != state.NotActivated ||
				inst.NodeState("pack_goods") != state.NotActivated {
				t.Fatalf("adapted state wrong under %s", adapt)
			}
		})
	}
}

func TestSequentialEvolutions(t *testing.T) {
	// Two evolutions in a row: V1 -> V2 -> V3; the instance follows both.
	e := newEngine(t)
	inst, err := e.CreateInstance("online_order", 0)
	if err != nil {
		t.Fatal(err)
	}
	mgr := evolution.NewManager(e)
	if _, err := mgr.Evolve("online_order", sim.OnlineOrderTypeChange(), evolution.Options{}); err != nil {
		t.Fatal(err)
	}
	second := []change.Operation{&change.InsertSyncEdge{From: "collect_data", To: "compose_order"}}
	report, err := mgr.Evolve("online_order", second, evolution.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := resultOf(report, inst.ID()); got.Outcome != evolution.Migrated {
		t.Fatalf("second migration = %s (%s)", got.Outcome, got.Detail)
	}
	if inst.Version() != 3 || inst.Migrations() != 2 {
		t.Fatalf("version=%d migrations=%d", inst.Version(), inst.Migrations())
	}
	if e.LatestVersion("online_order") != 3 {
		t.Fatal("latest version")
	}
}

func TestBulkMigrationAcrossStrategies(t *testing.T) {
	// A population with a bias mix migrates correctly under every storage
	// strategy and with parallel workers.
	for _, strat := range storage.Strategies() {
		t.Run(strat.String(), func(t *testing.T) {
			e := newEngine(t)
			e.SetStorageStrategy(strat)
			rng := rand.New(rand.NewSource(42))
			driver := sim.NewDriver(rng, e)
			const n = 40
			var wantMigratable int
			for i := 0; i < n; i++ {
				inst, err := e.CreateInstance("online_order", 0)
				if err != nil {
					t.Fatal(err)
				}
				switch i % 4 {
				case 0: // fresh
					wantMigratable++
				case 1: // advanced to I1
					if err := sim.AdvanceOnlineOrderToI1(e, inst); err != nil {
						t.Fatal(err)
					}
					wantMigratable++
				case 2: // state conflict
					if err := sim.AdvanceOnlineOrderToI3(e, inst); err != nil {
						t.Fatal(err)
					}
				case 3: // biased with the conflicting I2 bias
					if err := change.ApplyAdHoc(inst, sim.OnlineOrderBiasI2()...); err != nil {
						t.Fatal(err)
					}
				}
			}
			_ = driver
			mgr := evolution.NewManager(e)
			report, err := mgr.Evolve("online_order", sim.OnlineOrderTypeChange(), evolution.Options{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if got := report.Count(evolution.Migrated); got != wantMigratable {
				t.Fatalf("migrated = %d, want %d (report: %+v)", got, wantMigratable, summarize(report))
			}
			if got := report.Count(evolution.StateConflict); got != n/4 {
				t.Fatalf("state conflicts = %d, want %d", got, n/4)
			}
			if got := report.Count(evolution.StructuralConflict); got != n/4 {
				t.Fatalf("structural conflicts = %d, want %d", got, n/4)
			}
			if report.Count(evolution.Failed) != 0 {
				t.Fatalf("failures: %v", summarize(report))
			}
		})
	}
}

func summarize(r *evolution.Report) string {
	var b strings.Builder
	for _, o := range evolution.Outcomes() {
		fmt.Fprintf(&b, "%s=%d ", o, r.Count(o))
	}
	return b.String()
}

func TestOutcomeAndModeStrings(t *testing.T) {
	if evolution.Migrated.String() != "migrated" || evolution.StructuralConflict.String() != "structural-conflict" {
		t.Fatal("outcome strings")
	}
	if evolution.Outcome(99).String() == "" {
		t.Fatal("out-of-range outcome")
	}
	if evolution.FastCheck.String() != "fast" || evolution.ReplayCheck.String() != "replay" {
		t.Fatal("mode strings")
	}
	if evolution.AdaptIncremental.String() != "incremental-adapt" || evolution.AdaptReplay.String() != "replay-adapt" {
		t.Fatal("adapt strings")
	}
	if len(evolution.Outcomes()) != 6 {
		t.Fatal("outcomes enumeration")
	}
}
